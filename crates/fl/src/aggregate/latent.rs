//! FEDLS-style latent-space anomaly screening, plus the opt-in
//! benign-history screen — both [`DefenseStage`]s of the defense-pipeline
//! API.

use crate::defense::{DefenseStage, RoundContext, Verdicts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use safeloc_nn::{Activation, Adam, Dense, Init, Matrix, MseLoss, Optimizer, Sequential};

/// Latent-space update screening, following the paper's §II summary of
/// FEDLS: "autoencoder-based latent space representations to detect
/// anomalous LM updates".
///
/// Update deltas (from the round's shared [`RoundContext::deltas`]) are
/// random-projected to a small feature space (the deltas have tens of
/// thousands of dimensions; FEDLS's own encoder serves the same role), an
/// autoencoder is fit on the accumulated benign history, and updates
/// whose reconstruction error exceeds `mean + z_threshold·std` are
/// rejected with rule `"latent"` before the pipeline's combiner runs (a
/// [`UniformMean`](crate::defense::UniformMean) in the canonical FEDLS
/// composition, [`DefensePipeline::latent`](crate::defense::DefensePipeline::latent)).
///
/// This is the "resource-intensive" baseline of Table I: it runs a
/// second, large model server-side every round.
///
/// Rounds smaller than the 3-update guard cannot fit a filter of their
/// own; they are screened against the accumulated benign history instead
/// (median-norm rescale + z-test against the history rows' distance
/// distribution), so a boosted attacker in a cohort of two no longer
/// bypasses the defense under partial participation. With no history yet —
/// e.g. the very first round is already small — the round passes exactly
/// as before. The round-local z-test still cannot flag 1 outlier among
/// exactly 3 updates (mean+1.8σ of 3 points always covers the outlier);
/// composing a [`HistoryScreen`] after this stage
/// ([`DefensePipeline::latent_with_history`](crate::defense::DefensePipeline::latent_with_history))
/// closes that gap without re-pinning the default trajectories.
#[derive(Debug, Clone)]
pub struct LatentFilterAggregator {
    /// Random-projection feature dimension.
    pub feature_dim: usize,
    /// Autoencoder training epochs per round.
    pub ae_epochs: usize,
    /// Rejection threshold in standard deviations above the mean RCE.
    pub z_threshold: f32,
    /// Seed for the projection and AE init.
    pub seed: u64,
    projection: Option<Matrix>,
    /// Feature rows of previously *accepted* updates: the AE is trained on
    /// this benign history, not on the round under test — otherwise a small
    /// round lets the AE memorize the outlier it is supposed to flag.
    history: Vec<Vec<f32>>,
    /// Raw (pre-normalization) feature norms of the accepted history rows,
    /// aligned with `history`. Small cohorts have no trustworthy in-round
    /// scale — the median norm of a two-update round is dominated by the
    /// attacker — so they are rescaled against this benign record instead.
    history_norms: Vec<f32>,
}

impl LatentFilterAggregator {
    /// Creates the stage with sensible defaults (32-d features, 60
    /// epochs, 1.8σ rejection).
    pub fn new(seed: u64) -> Self {
        Self {
            feature_dim: 32,
            ae_epochs: 60,
            z_threshold: 1.8,
            seed,
            projection: None,
            history: Vec::new(),
            history_norms: Vec::new(),
        }
    }

    /// Minimum cohort size the round-local filter (AE or in-round median
    /// distance) can be fit on.
    const MIN_ROUND: usize = 3;

    /// Minimum accepted-history rows before the small-cohort fallback has
    /// something to screen against. Two rows is enough: the threshold is
    /// floored at half the benign center magnitude, so even a thin history
    /// separates a boosted attacker (whole multiples of the benign norm
    /// away) from ordinary drift — and waiting longer leaves more
    /// unscreened rounds for a model-replacement attacker to land in.
    const MIN_FALLBACK_HISTORY: usize = 2;

    /// Number of accepted feature rows retained as benign history.
    const HISTORY_CAP: usize = 60;

    /// Builds (or rebuilds on dimension change) the random projection and
    /// returns it, so callers can project many updates in parallel against
    /// one shared matrix.
    fn projection_for(&mut self, d: usize) -> &Matrix {
        if self
            .projection
            .as_ref()
            .map(|p| p.rows() != d)
            .unwrap_or(true)
        {
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9801_77CE);
            let scale = (1.0 / self.feature_dim as f32).sqrt();
            self.projection = Some(Init::Uniform(scale).matrix(d, self.feature_dim, &mut rng));
        }
        self.projection.as_ref().expect("just built")
    }

    /// Feature rows of the active updates: the shared flattened deltas,
    /// random-projected (in parallel against the shared projection).
    fn project_active(&mut self, ctx: &RoundContext<'_>, active: &[usize]) -> Vec<Vec<f32>> {
        let projection = self.projection_for(ctx.global().num_params());
        let deltas = ctx.deltas();
        active
            .par_iter()
            .map(|&i| deltas[i].matmul(projection).into_vec())
            .collect()
    }

    /// Appends an accepted feature row (and its raw norm) to the benign
    /// history, keeping both buffers bounded and aligned.
    fn remember(&mut self, row: Vec<f32>, raw_norm: f32) {
        self.history.push(row);
        self.history_norms.push(raw_norm);
        if self.history.len() > Self::HISTORY_CAP {
            let excess = self.history.len() - Self::HISTORY_CAP;
            self.history.drain(..excess);
            self.history_norms.drain(..excess);
        }
    }

    /// Small-cohort path: the round cannot fit its own filter (an AE — or
    /// even a within-round median — is meaningless on one or two updates),
    /// which is exactly the regime where a boosted attacker used to pass
    /// unchecked (the fig8 participation sweep's collapse). Instead, each
    /// update is z-tested against the accumulated *benign* history: rows are
    /// rescaled by the history's median raw norm (the in-round median norm
    /// is attacker-dominated in a cohort of two) and scored by distance to
    /// the history's coordinate-wise median; anything beyond
    /// `mean + z_threshold·spread` of the history's own distance
    /// distribution is rejected.
    fn screen_small_round(
        &mut self,
        ctx: &RoundContext<'_>,
        active: &[usize],
        verdicts: &mut Verdicts,
    ) {
        let raw_rows = self.project_active(ctx, active);
        let raw_norms: Vec<f32> = raw_rows.iter().map(|r| row_norm(r)).collect();
        let benign_scale = median_lower(&self.history_norms).max(1e-9);
        let rows: Vec<Vec<f32>> = raw_rows
            .iter()
            .map(|r| r.iter().map(|v| v / benign_scale).collect())
            .collect();

        let (center, threshold) = history_threshold(&self.history, self.z_threshold);

        for ((&i, row), &raw_norm) in active.iter().zip(&rows).zip(&raw_norms) {
            let score = distance(row, &center);
            if score <= threshold {
                self.remember(row.clone(), raw_norm);
            } else {
                verdicts.reject(i, "latent", score);
            }
        }
    }
}

/// Norm ratio past which an unscreened bootstrap row is kept *out* of a
/// benign record: a model-replacement attacker boosts its delta by
/// `n_clients / n_attackers` (≥ 3 for any minority attacker in the
/// paper's fleets), so a row dwarfing its own round's smallest update —
/// or the record so far — by that much must not seed the history a
/// screen later trusts.
const BOOTSTRAP_NORM_RATIO: f32 = 3.0;

/// Bootstrap recording shared by the FEDLS small-round fallback and the
/// [`HistoryScreen`]: normalizes each plausible feature row to unit scale
/// and returns the `(row, raw_norm)` pairs to remember as benign. Rows
/// exceeding [`BOOTSTRAP_NORM_RATIO`] times the smallest benign-looking
/// magnitude in sight (the round minimum, tightened by the record's lower
/// median once one exists) are boost suspects and excluded.
fn bootstrap_rows(
    raw_rows: &[Vec<f32>],
    norms: &[f32],
    history_norms: &[f32],
) -> Vec<(Vec<f32>, f32)> {
    let round_min = norms
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min)
        .max(1e-9);
    let record_scale = if history_norms.is_empty() {
        round_min
    } else {
        // Lower median: robust to a boosted row already recorded.
        median_lower(history_norms).min(round_min).max(1e-9)
    };
    let mut out = Vec::new();
    for (row, &norm) in raw_rows.iter().zip(norms) {
        if norm / record_scale > BOOTSTRAP_NORM_RATIO {
            continue;
        }
        let scale = norm.max(1e-9);
        out.push((row.iter().map(|v| v / scale).collect(), norm));
    }
    out
}

/// The benign-history screen statistics shared by the FEDLS small-round
/// fallback and the [`HistoryScreen`]: the history's coordinate-wise
/// median center, and the rejection threshold — `mean + z·spread` of the
/// history rows' own distance-to-center distribution, floored at half the
/// center magnitude (a near-degenerate history with all rows alike must
/// not reject honest updates over ordinary round-to-round drift, while a
/// boosted attacker sits whole multiples of the benign norm away).
fn history_threshold(history: &[Vec<f32>], z_threshold: f32) -> (Vec<f32>, f32) {
    let center = column_median(history);
    let hist_dists: Vec<f32> = history.iter().map(|r| distance(r, &center)).collect();
    let mean_h = hist_dists.iter().sum::<f32>() / hist_dists.len() as f32;
    let var_h = hist_dists
        .iter()
        .map(|d| (d - mean_h) * (d - mean_h))
        .sum::<f32>()
        / hist_dists.len() as f32;
    let spread = var_h.sqrt().max(1e-6);
    let threshold = (mean_h + z_threshold * spread).max(0.5 * row_norm(&center));
    (center, threshold)
}

/// L2 norm of a feature row.
pub(crate) fn row_norm(r: &[f32]) -> f32 {
    r.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Euclidean distance between two feature rows.
pub(crate) fn distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Median of a non-empty slice (upper median, matching the in-round path).
pub(crate) fn median(values: &[f32]) -> f32 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted[sorted.len() / 2]
}

/// Lower median of a non-empty slice. Boost attacks only ever *inflate*
/// norms, so when a contaminated record has an even split the smaller
/// middle value is the benign one — the screen's scale reference uses this
/// variant.
pub(crate) fn median_lower(values: &[f32]) -> f32 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted[(sorted.len() - 1) / 2]
}

/// Coordinate-wise median of a non-empty set of equal-length rows.
pub(crate) fn column_median(rows: &[Vec<f32>]) -> Vec<f32> {
    let cols = rows[0].len();
    (0..cols)
        .map(|c| median(&rows.iter().map(|r| r[c]).collect::<Vec<f32>>()))
        .collect()
}

impl DefenseStage for LatentFilterAggregator {
    fn name(&self) -> &'static str {
        "latent"
    }

    fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) {
        let active = verdicts.active_indices();
        if active.is_empty() {
            return;
        }
        if active.len() < Self::MIN_ROUND {
            // The round is too small to fit the AE (or any within-round
            // statistic). With accumulated benign history the updates are
            // screened against it — a single boosted attacker in a cohort
            // of two used to sail through here (the fig8 collapse). With
            // no usable history yet there is genuinely nothing to test
            // against: the round passes exactly as the seed did, but its
            // rows are *recorded*, so a session running nothing but small
            // cohorts still bootstraps a history and starts screening
            // within a couple of rounds.
            if self.history.len() < Self::MIN_FALLBACK_HISTORY {
                let raw_rows = self.project_active(ctx, &active);
                let norms: Vec<f32> = raw_rows.iter().map(|r| row_norm(r)).collect();
                // Boost suspects are still accepted (nothing to screen
                // against yet) but never recorded as benign.
                for (row, norm) in bootstrap_rows(&raw_rows, &norms, &self.history_norms) {
                    self.remember(row, norm);
                }
                return;
            }
            self.screen_small_round(ctx, &active, verdicts);
            return;
        }

        // Feature matrix: one row per update, scaled by the round's median
        // row norm so magnitudes stay comparable across rounds while
        // preserving outlier magnitude *within* the round. Each update's
        // delta-flatten-project chain is independent, so the fleet is
        // projected in parallel against the shared projection matrix.
        let raw_rows = self.project_active(ctx, &active);
        let raw_norms: Vec<f32> = raw_rows.iter().map(|r| row_norm(r)).collect();
        let median_norm = median(&raw_norms).max(1e-9);
        let rows: Vec<Vec<f32>> = raw_rows
            .iter()
            .map(|r| r.iter().map(|v| v / median_norm).collect())
            .collect();
        let features = Matrix::from_rows(&rows);

        // Anomaly score per update: while the benign history is short, use a
        // robust distance to the round's coordinate-wise median; afterwards,
        // the reconstruction error of an AE trained on the accepted history
        // (FEDLS's latent-space detector proper).
        let scores: Vec<f32> = if self.history.len() < 4 {
            let cols = features.cols();
            let mut median = vec![0.0f32; cols];
            for (c, m) in median.iter_mut().enumerate() {
                let mut col: Vec<f32> = (0..features.rows()).map(|r| features.get(r, c)).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                *m = col[col.len() / 2];
            }
            (0..features.rows())
                .map(|r| {
                    features
                        .row(r)
                        .iter()
                        .zip(&median)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        .sqrt()
                })
                .collect()
        } else {
            let hist = Matrix::from_rows(&self.history);
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xAE0);
            let f = self.feature_dim;
            let ae = vec![
                Dense::new(f, f / 2, Init::HeUniform, &mut rng),
                Dense::new(f / 2, f, Init::HeUniform, &mut rng),
            ];
            let mut ae = Sequential::from_layers(ae, vec![Activation::Relu, Activation::Identity]);
            let mut opt = Adam::new(5e-3);
            for _ in 0..self.ae_epochs {
                let trace = ae.forward_trace(&hist);
                let grad = MseLoss.grad(trace.output(), &hist);
                let grads = ae.backward(&trace, &grad).into_flat();
                use safeloc_nn::HasParams;
                opt.step(ae.param_tensors_mut(), &grads);
            }
            let recon = ae.forward(&features);
            MseLoss.per_row(&recon, &features)
        };

        let mean = scores.iter().sum::<f32>() / scores.len() as f32;
        let var = scores.iter().map(|r| (r - mean) * (r - mean)).sum::<f32>() / scores.len() as f32;
        let std = var.sqrt();
        let threshold = mean + self.z_threshold * std.max(1e-12);

        for ((&i, row), (&score, &raw_norm)) in
            active.iter().zip(&rows).zip(scores.iter().zip(&raw_norms))
        {
            if score <= threshold {
                self.remember(row.clone(), raw_norm);
            } else {
                verdicts.reject(i, "latent", score);
            }
        }
    }

    fn clone_stage(&self) -> Box<dyn DefenseStage> {
        Box::new(self.clone())
    }
}

/// The opt-in benign-history screen: z-tests *every* round — small or
/// large — against its own accumulated record of accepted feature rows,
/// with the same median-norm rescale the FEDLS small-cohort fallback
/// uses.
///
/// Composing it after [`LatentFilterAggregator`]
/// ([`DefensePipeline::latent_with_history`](crate::defense::DefensePipeline::latent_with_history))
/// closes the documented gap the round-local filter cannot: in a round of
/// exactly 3 updates the in-round `mean + 1.8σ` test always covers one
/// outlier, but the outlier still sits whole multiples of the benign norm
/// away from the history and is rejected here with rule
/// `"history-screen"`. It also works standalone in front of any combiner.
#[derive(Debug, Clone)]
pub struct HistoryScreen {
    /// Random-projection feature dimension.
    pub feature_dim: usize,
    /// Rejection threshold in standard deviations above the history's
    /// mean distance-to-center.
    pub z_threshold: f32,
    /// Accepted rows required before screening activates; earlier rounds
    /// only record.
    pub min_history: usize,
    /// Seed for the projection.
    pub seed: u64,
    projection: Option<Matrix>,
    history: Vec<Vec<f32>>,
    history_norms: Vec<f32>,
}

impl HistoryScreen {
    /// Creates the screen with the FEDLS-matching defaults (32-d features,
    /// 1.8σ, 3-row activation gate).
    pub fn new(seed: u64) -> Self {
        Self {
            feature_dim: 32,
            z_threshold: 1.8,
            min_history: 3,
            seed,
            projection: None,
            history: Vec::new(),
            history_norms: Vec::new(),
        }
    }

    /// Number of accepted feature rows retained.
    const HISTORY_CAP: usize = 60;

    fn projection_for(&mut self, d: usize) -> &Matrix {
        if self
            .projection
            .as_ref()
            .map(|p| p.rows() != d)
            .unwrap_or(true)
        {
            // A different stream than the latent stage's projection, so
            // composing both never correlates their feature spaces.
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x415C_0FEE);
            let scale = (1.0 / self.feature_dim as f32).sqrt();
            self.projection = Some(Init::Uniform(scale).matrix(d, self.feature_dim, &mut rng));
        }
        self.projection.as_ref().expect("just built")
    }

    fn remember(&mut self, row: Vec<f32>, raw_norm: f32) {
        self.history.push(row);
        self.history_norms.push(raw_norm);
        if self.history.len() > Self::HISTORY_CAP {
            let excess = self.history.len() - Self::HISTORY_CAP;
            self.history.drain(..excess);
            self.history_norms.drain(..excess);
        }
    }
}

impl DefenseStage for HistoryScreen {
    fn name(&self) -> &'static str {
        "history-screen"
    }

    fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) {
        let active = verdicts.active_indices();
        if active.is_empty() {
            return;
        }
        let projection = self.projection_for(ctx.global().num_params());
        let deltas = ctx.deltas();
        let raw_rows: Vec<Vec<f32>> = active
            .par_iter()
            .map(|&i| deltas[i].matmul(projection).into_vec())
            .collect();
        let raw_norms: Vec<f32> = raw_rows.iter().map(|r| row_norm(r)).collect();

        if self.history.len() < self.min_history {
            // Bootstrap: record plausible rows, screen nothing (same
            // shared logic as the latent stage's small-round bootstrap).
            for (row, norm) in bootstrap_rows(&raw_rows, &raw_norms, &self.history_norms) {
                self.remember(row, norm);
            }
            return;
        }

        let benign_scale = median_lower(&self.history_norms).max(1e-9);
        let (center, threshold) = history_threshold(&self.history, self.z_threshold);

        for ((&i, raw), &raw_norm) in active.iter().zip(&raw_rows).zip(&raw_norms) {
            let row: Vec<f32> = raw.iter().map(|v| v / benign_scale).collect();
            let score = distance(&row, &center);
            if score <= threshold {
                self.remember(row, raw_norm);
            } else {
                verdicts.reject(i, "history-screen", score);
            }
        }
    }

    fn clone_stage(&self) -> Box<dyn DefenseStage> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    #[allow(unused_imports)]
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::report::UpdateDecision;
    use crate::{Aggregator, ClientUpdate};
    use safeloc_nn::NamedParams;

    fn latent(seed: u64) -> DefensePipeline {
        DefensePipeline::latent(seed)
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[1.0], &[1.0]);
        assert_eq!(latent(0).aggregate(&g, &[]).params, g);
    }

    #[test]
    fn small_rounds_average() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[0.0]), update(1, &[4.0], &[0.0])];
        let out = latent(0).aggregate(&g, &u);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 3.0).abs() < 1e-5);
        assert_eq!(out.accepted(), 2);
    }

    #[test]
    fn gross_outlier_is_filtered_and_scored() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let mut u = vec![
            update(0, &[1.0, 1.0, 1.0, 1.0], &[0.1]),
            update(1, &[1.1, 0.9, 1.0, 1.05], &[0.1]),
            update(2, &[0.95, 1.05, 0.98, 1.0], &[0.1]),
            update(3, &[1.02, 1.0, 1.03, 0.97], &[0.1]),
        ];
        u.push(update(4, &[-80.0, 90.0, -70.0, 60.0], &[5.0]));
        let out = latent(1).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w.abs() < 5.0, "outlier leaked: {w}");
        match &out.decisions[4] {
            UpdateDecision::Rejected { rule, score } => {
                assert_eq!(rule, "latent");
                assert!(score.is_finite());
            }
            other => panic!("outlier accepted: {other:?}"),
        }
    }

    #[test]
    fn homogeneous_updates_mostly_survive() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u: Vec<_> = (0..6)
            .map(|i| update(i, &[1.0 + i as f32 * 0.01, 1.0], &[0.2]))
            .collect();
        let out = latent(2).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.9..=1.1).contains(&w), "homogeneous mean off: {w}");
    }

    /// One benign round of `n` lightly jittered updates around `[1,1,1,1]`.
    fn benign_round(n: usize, salt: f32) -> Vec<ClientUpdate> {
        (0..n)
            .map(|i| {
                let j = (i as f32 - n as f32 / 2.0) * 0.01 + salt;
                update(i, &[1.0 + j, 1.0 - j, 1.0 + 0.5 * j, 1.0 - 0.5 * j], &[0.1])
            })
            .collect()
    }

    /// Regression for the fig8 participation-sweep collapse: under partial
    /// participation a cohort of two (one honest client, one boosted
    /// attacker) used to fall below the 3-update guard and be accepted
    /// wholesale — a single attacker bypassed FEDLS entirely. With benign
    /// history accumulated from earlier full rounds, the small round is now
    /// screened against it and the attacker is rejected.
    #[test]
    fn small_cohort_attacker_is_rejected_against_history() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let mut agg = latent(1);
        for r in 0..2 {
            let out = agg.aggregate(&g, &benign_round(5, r as f32 * 0.005));
            assert!(out.accepted() >= 4, "benign round mostly accepted");
        }
        // The collapse shape: cohort of 2, one model-replacement attacker.
        let small = vec![
            update(0, &[1.01, 0.99, 1.0, 1.0], &[0.1]),
            update(5, &[-70.0, 80.0, -65.0, 72.0], &[5.0]),
        ];
        let out = agg.aggregate(&g, &small);
        assert!(
            out.decisions[0].is_accepted(),
            "honest small-cohort update rejected: {:?}",
            out.decisions[0]
        );
        match &out.decisions[1] {
            UpdateDecision::Rejected { rule, score } => {
                assert_eq!(rule, "latent");
                assert!(score.is_finite());
            }
            other => panic!("small-cohort attacker accepted: {other:?}"),
        }
        // The next GM is the honest update alone, not dragged by the boost.
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((w - 1.01).abs() < 1e-5, "GM dragged by the attacker: {w}");
    }

    /// Honest small cohorts must keep flowing once history exists — the
    /// fallback screens, it does not blanket-reject.
    #[test]
    fn small_cohort_honest_updates_survive_the_history_screen() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let mut agg = latent(4);
        for r in 0..3 {
            agg.aggregate(&g, &benign_round(4, r as f32 * 0.004));
        }
        let small = vec![
            update(0, &[1.02, 0.98, 1.01, 0.99], &[0.1]),
            update(1, &[0.97, 1.03, 1.0, 1.0], &[0.1]),
        ];
        let out = agg.aggregate(&g, &small);
        assert_eq!(
            out.accepted(),
            2,
            "benign small cohort rejected: {:?}",
            out.decisions
        );
    }

    /// An attacker landing in the very first (bootstrap) small rounds must
    /// not poison the benign record: its boosted row is accepted (nothing
    /// to screen against yet) but *not* recorded, so the screen that
    /// activates two rounds later still rejects it — instead of trusting a
    /// history the attacker seeded.
    #[test]
    fn bootstrap_rounds_do_not_record_the_boosted_attacker_as_benign() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let mut agg = latent(9);
        let attacker = || update(5, &[-60.0, 70.0, -55.0, 65.0], &[5.0]);
        // Round 1 is already the collapse shape: cohort of 2, no history.
        let out1 = agg.aggregate(&g, &[update(0, &[1.0, 1.0, 1.0, 1.0], &[0.1]), attacker()]);
        assert_eq!(out1.accepted(), 2, "nothing to screen against yet");
        // Round 2: one honest client fills the record to the screening gate.
        agg.aggregate(&g, &[update(1, &[0.98, 1.02, 1.0, 1.0], &[0.1])]);
        // Round 3: the attacker returns — the record it never entered
        // rejects it, and the honest cohort member still trains.
        let out3 = agg.aggregate(
            &g,
            &[update(2, &[1.01, 0.99, 1.0, 1.0], &[0.1]), attacker()],
        );
        assert!(
            out3.decisions[0].is_accepted(),
            "honest update rejected after attacker-touched bootstrap: {:?}",
            out3.decisions[0]
        );
        assert!(
            !out3.decisions[1].is_accepted(),
            "bootstrap-seeded attacker still accepted: {:?}",
            out3.decisions[1]
        );
    }

    /// Without any accumulated history there is nothing to screen against:
    /// the small round averages exactly as before (the seed behavior the
    /// ≥ 3-update path also keeps).
    #[test]
    fn small_round_with_no_history_still_averages_bitwise() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[4.0]), update(1, &[4.0], &[8.0])];
        let out = latent(0).aggregate(&g, &u);
        let expected = NamedParams::mean(&[u[0].params.clone(), u[1].params.clone()]);
        assert_eq!(out.params, expected);
        assert_eq!(out.accepted(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u: Vec<_> = (0..5)
            .map(|i| update(i, &[i as f32, 1.0], &[0.0]))
            .collect();
        let a = latent(7).aggregate(&g, &u);
        let b = latent(7).aggregate(&g, &u);
        assert_eq!(a, b);
    }

    /// The documented blind spot of the bare latent filter: in a round of
    /// exactly 3 updates the in-round `mean + 1.8σ` z-test always covers a
    /// single outlier — and the ROADMAP follow-up closes it by composing
    /// the history screen behind it. Same attacker, same rounds: the bare
    /// pipeline accepts the boosted update, the `latent → history-screen`
    /// variant rejects it while honest updates keep flowing.
    #[test]
    fn history_screen_closes_the_three_update_round_gap() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let run = |mut pipeline: DefensePipeline| {
            // Benign history accumulates over two full rounds.
            for r in 0..2 {
                let out = pipeline.aggregate(&g, &benign_round(5, r as f32 * 0.005));
                assert!(out.accepted() >= 4, "benign round mostly accepted");
            }
            // The gap shape: exactly 3 updates, one boosted attacker.
            let small = vec![
                update(0, &[1.01, 0.99, 1.0, 1.0], &[0.1]),
                update(1, &[0.99, 1.01, 1.0, 1.0], &[0.1]),
                update(5, &[-70.0, 80.0, -65.0, 72.0], &[5.0]),
            ];
            pipeline.aggregate(&g, &small)
        };

        let bare = run(DefensePipeline::latent(1));
        assert!(
            bare.decisions[2].is_accepted(),
            "the documented 3-update gap closed without the history screen?"
        );

        let screened = run(DefensePipeline::latent_with_history(1));
        assert!(screened.decisions[0].is_accepted());
        assert!(screened.decisions[1].is_accepted());
        match &screened.decisions[2] {
            UpdateDecision::Rejected { rule, score } => {
                assert_eq!(rule, "history-screen");
                assert!(score.is_finite());
            }
            other => panic!("3-update-round attacker still accepted: {other:?}"),
        }
        // The GM follows the honest pair, not the boost.
        let w = screened.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.9..=1.1).contains(&w), "GM dragged: {w}");
    }

    /// The history screen must not blanket-reject once active: honest
    /// full-size rounds keep flowing through the composed variant.
    #[test]
    fn history_screen_passes_honest_full_rounds() {
        let g = params(&[0.0, 0.0, 0.0, 0.0], &[0.0]);
        let mut p = DefensePipeline::latent_with_history(3);
        for r in 0..4 {
            let out = p.aggregate(&g, &benign_round(5, r as f32 * 0.004));
            assert!(
                out.accepted() >= 4,
                "round {r} over-rejected: {:?}",
                out.decisions
            );
        }
    }
}
