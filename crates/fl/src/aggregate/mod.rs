//! Server-side aggregation strategies.
//!
//! Each strategy turns the current global model plus a set of client
//! updates into the next global model. The five rules here cover the
//! baselines the paper compares against; SAFELOC's saliency-map rule lives
//! in the `safeloc` crate.

mod cluster;
mod distance;
mod fedavg;
mod krum;
mod latent;
mod selective;

pub use cluster::ClusterAggregator;
pub use distance::DistanceMatrix;
pub use fedavg::FedAvg;
pub use krum::Krum;
pub use latent::LatentFilterAggregator;
pub use selective::SelectiveAggregator;

use crate::update::ClientUpdate;
use safeloc_nn::NamedParams;

/// A server-side aggregation rule.
pub trait Aggregator: Send {
    /// Produces the next global model from the current one and this round's
    /// client updates.
    ///
    /// Implementations must return `global.clone()` when `updates` is empty
    /// (a round where every client dropped out must not corrupt the GM).
    fn aggregate(&mut self, global: &NamedParams, updates: &[ClientUpdate]) -> NamedParams;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Boxed clone, so servers holding `Box<dyn Aggregator>` are clonable
    /// (the bench harness clones pretrained frameworks across scenarios).
    fn clone_box(&self) -> Box<dyn Aggregator>;
}

impl Clone for Box<dyn Aggregator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Filters out updates containing NaN/Inf — shared guard used by every
/// aggregator so one crashed client cannot poison the GM with non-finite
/// weights.
pub(crate) fn finite_updates(updates: &[ClientUpdate]) -> Vec<&ClientUpdate> {
    updates
        .iter()
        .filter(|u| !u.params.has_non_finite())
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use safeloc_nn::Matrix;

    /// A tiny two-tensor snapshot for aggregator tests.
    pub fn params(w: &[f32], b: &[f32]) -> NamedParams {
        NamedParams::new(vec![
            (
                "layer0.w".into(),
                Matrix::from_vec(1, w.len(), w.to_vec()).unwrap(),
            ),
            (
                "layer0.b".into(),
                Matrix::from_vec(1, b.len(), b.to_vec()).unwrap(),
            ),
        ])
    }

    pub fn update(id: usize, w: &[f32], b: &[f32]) -> ClientUpdate {
        ClientUpdate::new(id, params(w, b), 10)
    }
}
