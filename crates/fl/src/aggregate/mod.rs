//! Server-side aggregation: the [`Aggregator`] contract, the shared
//! guard, and the rule building blocks defense pipelines compose.
//!
//! An [`Aggregator`] turns the current global model plus a set of client
//! updates into an [`AggregationOutcome`]: the next global model *and* a
//! per-update decision trail (accepted with what weight / rejected by which
//! rule with what score) that [`RoundReport`](crate::RoundReport)s are
//! built from.
//!
//! Since the defense-pipeline redesign the only production implementor is
//! [`DefensePipeline`](crate::defense::DefensePipeline): an ordered list
//! of screening stages plus one terminal combiner. The paper's rules live
//! here as those building blocks — [`FedAvg`], [`Krum`] and
//! [`SelectiveAggregator`] are combiners, [`ClusterAggregator`],
//! [`LatentFilterAggregator`] and [`HistoryScreen`] are screening stages
//! (SAFELOC's saliency combiner lives in the `safeloc` crate) — and the
//! canonical compositions (`DefensePipeline::fedavg()`, `::krum(f)`, …)
//! reproduce the monolithic aggregators they replaced bit for bit.
//!
//! Implementors provide [`Aggregator::aggregate_filtered`], which is only
//! ever called with a non-empty, all-finite update set. The two invariants
//! every rule used to duplicate — "an empty round must not corrupt the GM"
//! and "NaN/Inf updates are dropped before the rule sees them" — live once,
//! in [`aggregate_or_clone`], behind the provided
//! [`Aggregator::aggregate`] entry point.

mod cluster;
mod distance;
mod fedavg;
mod krum;
mod latent;
mod selective;

pub use cluster::ClusterAggregator;
pub use distance::DistanceMatrix;
pub use fedavg::FedAvg;
pub use krum::Krum;
pub use latent::{HistoryScreen, LatentFilterAggregator};
pub use selective::SelectiveAggregator;

use crate::report::{AggregationOutcome, StageTelemetry, UpdateDecision};
use crate::update::ClientUpdate;
use safeloc_nn::NamedParams;

/// Rule name recorded on updates the shared guard drops for NaN/Inf
/// weights.
pub const NON_FINITE_RULE: &str = "non-finite";

/// A server-side aggregation rule.
pub trait Aggregator: Send {
    /// The core rule: produces the next global model and one
    /// [`UpdateDecision`] per update.
    ///
    /// Called only through [`Aggregator::aggregate`], which guarantees
    /// `updates` is non-empty and free of non-finite weights — rules do not
    /// re-implement those guards. The returned `decisions` must parallel
    /// `updates`.
    fn aggregate_filtered(
        &mut self,
        global: &NamedParams,
        updates: &[&ClientUpdate],
    ) -> AggregationOutcome;

    /// Strategy name for reports (a pipeline's composition label).
    fn name(&self) -> &str;

    /// Boxed clone, so servers holding `Box<dyn Aggregator>` are clonable
    /// (the bench harness clones pretrained frameworks across scenarios).
    fn clone_box(&self) -> Box<dyn Aggregator>;

    /// Drains the per-stage telemetry of the most recent
    /// [`Aggregator::aggregate`] call — rejection counts and wall time by
    /// stage name, combiner last. Engines fold it into the round's
    /// [`RoundReport`](crate::RoundReport). The default (for aggregators
    /// without internal stages) is empty; telemetry lives outside
    /// [`AggregationOutcome`] so outcome equality stays meaningful in
    /// determinism tests while wall clocks vary run to run.
    fn take_stage_telemetry(&mut self) -> Vec<StageTelemetry> {
        Vec::new()
    }

    /// The guarded entry point every round goes through: filters
    /// non-finite updates, returns the global model unchanged when nothing
    /// usable remains, and delegates to
    /// [`Aggregator::aggregate_filtered`] otherwise. Do not override.
    fn aggregate(&mut self, global: &NamedParams, updates: &[ClientUpdate]) -> AggregationOutcome {
        aggregate_or_clone(self, global, updates)
    }
}

impl Clone for Box<dyn Aggregator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The shared empty-round / non-finite guard (usable on `dyn Aggregator`,
/// where the provided [`Aggregator::aggregate`] is not):
///
/// 1. updates with NaN/Inf weights are rejected up front (one crashed or
///    actively hostile client cannot poison the GM with non-finite
///    arithmetic),
/// 2. if no update survives — every client dropped out, or every update
///    was non-finite — the next GM is `global.clone()`, bit for bit,
/// 3. otherwise the rule runs on the survivors and its decisions are
///    scattered back to input positions.
pub fn aggregate_or_clone<A: Aggregator + ?Sized>(
    rule: &mut A,
    global: &NamedParams,
    updates: &[ClientUpdate],
) -> AggregationOutcome {
    let mut finite: Vec<&ClientUpdate> = Vec::with_capacity(updates.len());
    let mut finite_slots: Vec<usize> = Vec::with_capacity(updates.len());
    let mut decisions: Vec<UpdateDecision> = Vec::with_capacity(updates.len());
    for (slot, u) in updates.iter().enumerate() {
        if u.params.has_non_finite() {
            decisions.push(UpdateDecision::Rejected {
                rule: NON_FINITE_RULE.to_string(),
                score: 1.0,
            });
        } else {
            // Placeholder, overwritten by the rule's decision below.
            decisions.push(UpdateDecision::Accepted { weight: 0.0 });
            finite_slots.push(slot);
            finite.push(u);
        }
    }
    if finite.is_empty() {
        return AggregationOutcome {
            params: global.clone(),
            decisions,
        };
    }
    let inner = rule.aggregate_filtered(global, &finite);
    assert_eq!(
        inner.decisions.len(),
        finite.len(),
        "{} returned {} decisions for {} updates",
        rule.name(),
        inner.decisions.len(),
        finite.len()
    );
    for (slot, decision) in finite_slots.into_iter().zip(inner.decisions) {
        decisions[slot] = decision;
    }
    AggregationOutcome {
        params: inner.params,
        decisions,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use safeloc_nn::Matrix;

    /// A tiny two-tensor snapshot for aggregator tests.
    pub fn params(w: &[f32], b: &[f32]) -> NamedParams {
        NamedParams::new(vec![
            (
                "layer0.w".into(),
                Matrix::from_vec(1, w.len(), w.to_vec()).unwrap(),
            ),
            (
                "layer0.b".into(),
                Matrix::from_vec(1, b.len(), b.to_vec()).unwrap(),
            ),
        ])
    }

    pub fn update(id: usize, w: &[f32], b: &[f32]) -> ClientUpdate {
        ClientUpdate::new(id, params(w, b), 10)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{params, update};
    use super::*;
    use crate::defense::DefensePipeline;

    #[test]
    fn guard_scatters_decisions_back_to_input_positions() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[f32::NAN], &[0.0]),
            update(1, &[2.0], &[2.0]),
            update(2, &[f32::INFINITY], &[0.0]),
            update(3, &[4.0], &[4.0]),
        ];
        let out = DefensePipeline::fedavg().aggregate(&g, &u);
        assert_eq!(out.decisions.len(), 4);
        assert!(matches!(
            &out.decisions[0],
            UpdateDecision::Rejected { rule, .. } if rule == NON_FINITE_RULE
        ));
        assert!(out.decisions[1].is_accepted());
        assert!(!out.decisions[2].is_accepted());
        assert!(out.decisions[3].is_accepted());
        assert_eq!(out.params.get("layer0.w").unwrap().get(0, 0), 3.0);
    }

    #[test]
    fn guard_clones_global_when_nothing_survives() {
        let g = params(&[7.0], &[8.0]);
        let u = vec![update(0, &[f32::NAN], &[0.0])];
        let out = DefensePipeline::fedavg().aggregate(&g, &u);
        assert_eq!(out.params, g);
        assert_eq!(out.accepted(), 0);
    }
}
