//! Krum (Blanchard et al. / El Mhamdi et al.): select the single update
//! closest to its peers — the earliest FL indoor-localization defense the
//! paper cites as [22], now a selecting [`Combiner`] of the
//! defense-pipeline API.

use crate::aggregate::DistanceMatrix;
use crate::defense::{Combiner, RoundContext, Verdicts};
use safeloc_nn::NamedParams;

/// Krum selection: the next GM is the one surviving LM whose summed
/// squared distance to its `n - f - 2` nearest surviving peers is
/// smallest, where `f` is the assumed number of Byzantine clients.
///
/// Robust to a minority of arbitrary updates, but discards the
/// collaborative signal of every non-selected client — the paper's §II
/// criticism ("fails to incorporate collaborative learning from all
/// clients"). The decision trail makes that visible: one update is
/// accepted with weight 1, every other is rejected with its Krum score.
/// Selection ranks the updates aggregation would actually apply: in the
/// common unclipped round, distances come from the round's shared
/// [`RoundContext::squared_l2`] matrix; once any stage has clipped an
/// update, distances are recomputed over the clip-scaled deltas
/// ([`DistanceMatrix::squared_l2_scaled`]) so a boosted attacker cannot
/// first be shrunk to the benign norm scale and then still be ranked —
/// and selected — at its unclipped magnitude. The returned GM honors the
/// selected update's clip scale either way.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    /// Assumed number of malicious clients.
    pub assumed_byzantine: usize,
}

impl Krum {
    /// Krum assuming `f` Byzantine clients.
    pub fn new(f: usize) -> Self {
        Self {
            assumed_byzantine: f,
        }
    }
}

impl Default for Krum {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Combiner for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        if active.len() == 1 {
            verdicts.set_weight(active[0], 1.0);
            return verdicts.effective(ctx, active[0]).into_owned();
        }
        let n = active.len();
        // Number of closest neighbours to score against.
        let k = n.saturating_sub(self.assumed_byzantine + 2).max(1);
        // One symmetric distance pass for the whole round, shared with any
        // other distance-reading stage. The seed recomputed all O(n²)
        // distances per candidate — O(n³·d) total; this is O(n²·d/2) once.
        // If an upstream stage clipped anything, score the clip-scaled
        // deltas instead — the updates aggregation will actually apply.
        let scaled;
        let distances = if active.iter().any(|&i| verdicts.scale(i) < 1.0) {
            let scales: Vec<f32> = (0..ctx.len()).map(|i| verdicts.scale(i)).collect();
            scaled = DistanceMatrix::squared_l2_scaled(ctx.deltas(), &scales);
            &scaled
        } else {
            ctx.squared_l2()
        };
        let mut scores = Vec::with_capacity(n);
        let mut best = (f32::INFINITY, active[0]);
        let mut dists = Vec::with_capacity(n.saturating_sub(1));
        for &i in &active {
            dists.clear();
            for &j in &active {
                if j != i {
                    dists.push(distances.get(i, j));
                }
            }
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let score: f32 = dists.iter().take(k).sum();
            scores.push(score);
            if score < best.0 {
                best = (score, i);
            }
        }
        for (&i, score) in active.iter().zip(scores) {
            if i == best.1 {
                verdicts.set_weight(i, 1.0);
            } else {
                verdicts.reject(i, "krum", score);
            }
        }
        verdicts.effective(ctx, best.1).into_owned()
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::report::UpdateDecision;
    use crate::Aggregator;

    fn krum(f: usize) -> DefensePipeline {
        DefensePipeline::krum(f)
    }

    #[test]
    fn selects_the_consensus_update() {
        let g = params(&[0.0], &[0.0]);
        // Three near-identical honest updates and one outlier.
        let u = vec![
            update(0, &[1.0], &[1.0]),
            update(1, &[1.1], &[1.0]),
            update(2, &[0.9], &[1.0]),
            update(3, &[50.0], &[-50.0]),
        ];
        let out = krum(1).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.8..=1.2).contains(&w), "picked the outlier: {w}");
        // Exactly one accepted; the outlier's rejection score dwarfs the
        // honest ones'.
        assert_eq!(out.accepted(), 1);
        assert_eq!(out.rejected(), 3);
        let outlier_score = match &out.decisions[3] {
            UpdateDecision::Rejected { rule, score } => {
                assert_eq!(rule, "krum");
                *score
            }
            other => panic!("outlier accepted: {other:?}"),
        };
        assert!(outlier_score > 100.0, "outlier score {outlier_score}");
    }

    #[test]
    fn single_update_is_returned_as_is() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[3.0], &[4.0])];
        let out = krum(1).aggregate(&g, &u);
        assert_eq!(out.params, u[0].params);
        assert_eq!(out.accepted(), 1);
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[7.0], &[8.0]);
        assert_eq!(krum(1).aggregate(&g, &[]).params, g);
    }

    #[test]
    fn ignores_non_finite_outliers() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[1.0]),
            update(1, &[f32::INFINITY], &[0.0]),
            update(2, &[1.05], &[1.0]),
        ];
        let out = krum(1).aggregate(&g, &u);
        assert!(!out.params.has_non_finite());
        assert!(!out.decisions[1].is_accepted());
    }

    #[test]
    fn resists_minority_collusion() {
        // Krum's guarantee needs n >= 2f + 3; with f = 2 that is n >= 7.
        let g = params(&[0.0], &[0.0]);
        let mut u: Vec<_> = (0..5)
            .map(|i| update(i, &[1.0 + i as f32 * 0.02], &[0.0]))
            .collect();
        u.push(update(5, &[10.0], &[0.0]));
        u.push(update(6, &[10.0], &[0.0]));
        let out = krum(2).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w < 2.0, "collusion won: {w}");
    }

    #[test]
    fn below_guarantee_threshold_collusion_can_win() {
        // Documents the boundary: with n = 5 < 2f + 3 two identical
        // colluders have zero mutual distance and Krum selects them.
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.02], &[0.0]),
            update(2, &[0.98], &[0.0]),
            update(3, &[10.0], &[0.0]),
            update(4, &[10.0], &[0.0]),
        ];
        let out = krum(2).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w > 2.0, "expected the documented failure mode, got {w}");
    }

    /// The composition the monolith could never express: norm-bounding
    /// before selection defuses the boosted colluders that beat bare Krum
    /// below its n ≥ 2f + 3 guarantee.
    #[test]
    fn norm_clip_rescues_krum_below_the_guarantee_threshold() {
        use crate::defense::NormClip;
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.02], &[0.0]),
            update(2, &[0.98], &[0.0]),
            update(3, &[10.0], &[0.0]),
            update(4, &[10.0], &[0.0]),
        ];
        let mut clipped = DefensePipeline::new(
            "norm-clip+krum",
            vec![Box::new(NormClip::new(1.5))],
            Box::new(Krum::new(2)),
        );
        let out = clipped.aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w < 2.0, "clipped colluders still replaced the model: {w}");
    }

    /// Regression for the documented Krum-after-clip gap: selection used
    /// to rank *unclipped* distances even after a `NormClip` stage, so an
    /// attacker who parked just inside the clip cap — while clipping
    /// dragged the honest tail onto the cap sphere near it — won the
    /// unclipped ranking and was selected. Scoring the clip-scaled deltas
    /// (what aggregation actually applies) rejects it.
    #[test]
    fn krum_selection_sees_clipped_deltas() {
        use crate::defense::NormClip;
        let g = params(&[0.0, 0.0], &[0.0]);
        // Honest spread along one axis; the attacker sits just off-axis at
        // the round's lower-median norm (= the clip cap), n = 5, f = 1.
        let u = vec![
            update(0, &[2.0, 0.0], &[0.0]),
            update(1, &[8.0, 0.0], &[0.0]),
            update(2, &[14.0, 0.0], &[0.0]),
            update(3, &[20.0, 0.0], &[0.0]),
            update(4, &[11.0, 2.0], &[0.0]),
        ];

        // Bare Krum takes the bait: unclipped, the attacker is the most
        // central update (k = 2 nearest at 13 + 13 = 26 vs 49 for every
        // honest client) — the geometry the gap is about.
        let bare = krum(1).aggregate(&g, &u);
        assert!(
            bare.decisions[4].is_accepted(),
            "geometry no longer baits bare Krum; the regression test is vacuous"
        );

        // NormClip(1.0) caps at the lower-median norm (the attacker's own
        // ≈ 11.18): clients 2 and 3 get dragged onto the cap sphere at
        // [11.18, 0], right next to the attacker. Before the fix Krum
        // still ranked the unclipped points and selected the attacker.
        let mut clipped = DefensePipeline::new(
            "norm-clip+krum",
            vec![Box::new(NormClip::new(1.0))],
            Box::new(Krum::new(1)),
        );
        let out = clipped.aggregate(&g, &u);
        assert!(
            !out.decisions[4].is_accepted(),
            "attacker survived Krum selection after clipping"
        );
        // The winner is a clipped honest update sitting at the cap.
        let w = out.params.get("layer0.w").unwrap();
        assert!(
            (w.get(0, 0) - 11.18034).abs() < 1e-3 && w.get(0, 1) == 0.0,
            "unexpected selected GM: [{}, {}]",
            w.get(0, 0),
            w.get(0, 1)
        );
    }
}
