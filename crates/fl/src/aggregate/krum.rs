//! Krum (Blanchard et al. / El Mhamdi et al.): select the single update
//! closest to its peers — the earliest FL indoor-localization defense the
//! paper cites as [22].

use super::{Aggregator, DistanceMatrix};
use crate::report::{AggregationOutcome, UpdateDecision};
use crate::update::ClientUpdate;
use safeloc_nn::NamedParams;

/// Krum selection: the next GM is the one LM whose summed squared distance
/// to its `n - f - 2` nearest peers is smallest, where `f` is the assumed
/// number of Byzantine clients.
///
/// Robust to a minority of arbitrary updates, but discards the
/// collaborative signal of every non-selected client — the paper's §II
/// criticism ("fails to incorporate collaborative learning from all
/// clients"). The decision trail makes that visible: one update is
/// accepted with weight 1, every other is rejected with its Krum score.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    /// Assumed number of malicious clients.
    pub assumed_byzantine: usize,
}

impl Krum {
    /// Krum assuming `f` Byzantine clients.
    pub fn new(f: usize) -> Self {
        Self {
            assumed_byzantine: f,
        }
    }
}

impl Default for Krum {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Aggregator for Krum {
    fn aggregate_filtered(
        &mut self,
        _global: &NamedParams,
        updates: &[&ClientUpdate],
    ) -> AggregationOutcome {
        if updates.len() == 1 {
            return AggregationOutcome::all_accepted(updates[0].params.clone(), 1);
        }
        let n = updates.len();
        // Number of closest neighbours to score against.
        let k = n.saturating_sub(self.assumed_byzantine + 2).max(1);
        // One symmetric distance pass for the whole round. The seed
        // recomputed all O(n²) distances per candidate — O(n³·d) total and
        // each (i, j) pair evaluated twice; this is O(n²·d/2) once, with
        // the pair set computed in parallel.
        let distances = DistanceMatrix::squared_l2(updates);
        let mut scores = Vec::with_capacity(n);
        let mut best = (f32::INFINITY, 0usize);
        let mut dists = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n {
            distances.distances_from(i, &mut dists);
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let score: f32 = dists.iter().take(k).sum();
            scores.push(score);
            if score < best.0 {
                best = (score, i);
            }
        }
        let decisions = scores
            .into_iter()
            .enumerate()
            .map(|(i, score)| {
                if i == best.1 {
                    UpdateDecision::Accepted { weight: 1.0 }
                } else {
                    UpdateDecision::Rejected {
                        rule: "krum".to_string(),
                        score,
                    }
                }
            })
            .collect();
        AggregationOutcome {
            params: updates[best.1].params.clone(),
            decisions,
        }
    }

    fn name(&self) -> &'static str {
        "Krum"
    }

    fn clone_box(&self) -> Box<dyn Aggregator> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    use super::*;

    #[test]
    fn selects_the_consensus_update() {
        let g = params(&[0.0], &[0.0]);
        // Three near-identical honest updates and one outlier.
        let u = vec![
            update(0, &[1.0], &[1.0]),
            update(1, &[1.1], &[1.0]),
            update(2, &[0.9], &[1.0]),
            update(3, &[50.0], &[-50.0]),
        ];
        let out = Krum::new(1).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.8..=1.2).contains(&w), "picked the outlier: {w}");
        // Exactly one accepted; the outlier's rejection score dwarfs the
        // honest ones'.
        assert_eq!(out.accepted(), 1);
        assert_eq!(out.rejected(), 3);
        let outlier_score = match &out.decisions[3] {
            UpdateDecision::Rejected { rule, score } => {
                assert_eq!(rule, "krum");
                *score
            }
            other => panic!("outlier accepted: {other:?}"),
        };
        assert!(outlier_score > 100.0, "outlier score {outlier_score}");
    }

    #[test]
    fn single_update_is_returned_as_is() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[3.0], &[4.0])];
        let out = Krum::default().aggregate(&g, &u);
        assert_eq!(out.params, u[0].params);
        assert_eq!(out.accepted(), 1);
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[7.0], &[8.0]);
        assert_eq!(Krum::default().aggregate(&g, &[]).params, g);
    }

    #[test]
    fn ignores_non_finite_outliers() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[1.0]),
            update(1, &[f32::INFINITY], &[0.0]),
            update(2, &[1.05], &[1.0]),
        ];
        let out = Krum::new(1).aggregate(&g, &u);
        assert!(!out.params.has_non_finite());
        assert!(!out.decisions[1].is_accepted());
    }

    #[test]
    fn resists_minority_collusion() {
        // Krum's guarantee needs n >= 2f + 3; with f = 2 that is n >= 7.
        let g = params(&[0.0], &[0.0]);
        let mut u: Vec<_> = (0..5)
            .map(|i| update(i, &[1.0 + i as f32 * 0.02], &[0.0]))
            .collect();
        u.push(update(5, &[10.0], &[0.0]));
        u.push(update(6, &[10.0], &[0.0]));
        let out = Krum::new(2).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w < 2.0, "collusion won: {w}");
    }

    #[test]
    fn below_guarantee_threshold_collusion_can_win() {
        // Documents the boundary: with n = 5 < 2f + 3 two identical
        // colluders have zero mutual distance and Krum selects them.
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.02], &[0.0]),
            update(2, &[0.98], &[0.0]),
            update(3, &[10.0], &[0.0]),
            update(4, &[10.0], &[0.0]),
        ];
        let out = Krum::new(2).aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!(w > 2.0, "expected the documented failure mode, got {w}");
    }
}
