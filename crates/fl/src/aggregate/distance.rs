//! Shared pairwise-distance computation for the aggregation rules.
//!
//! Krum, FEDCC-style clustering and related defenses all need the same
//! quantity: distances between every pair of this round's client updates.
//! The seed implementations recomputed distances per candidate — Krum paid
//! the full `O(n²·d)` *per* candidate, the exact scaling weakness Fang et
//! al. call out — and each aggregator rolled its own loop. This module
//! computes one symmetric matrix per round, with the pair set split across
//! threads, and every rule reads from it.
//!
//! Distances are stored condensed (upper triangle, `n·(n-1)/2` entries);
//! lookups are `O(1)` and symmetric by construction.

use crate::update::ClientUpdate;
use rayon::prelude::*;

/// Pairs below this count are computed serially — thread spawn costs more
/// than the distance arithmetic for tiny client fleets.
const PARALLEL_MIN_PAIRS: usize = 8;

/// A symmetric `n x n` distance matrix stored as its upper triangle.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// `values[idx(i, j)]` for `i < j`.
    values: Vec<f32>,
}

impl DistanceMatrix {
    /// Builds the matrix by evaluating `metric(i, j)` for every pair
    /// `i < j`, in parallel for non-trivial pair counts.
    pub fn build(n: usize, metric: impl Fn(usize, usize) -> f32 + Sync + Send) -> Self {
        Self::build_into(n, Vec::new(), metric)
    }

    /// [`build`](Self::build) into a reused buffer: `scratch` (typically a
    /// previous round's matrix, via [`into_values`](Self::into_values)) is
    /// cleared and refilled, so steady-state rounds stop reallocating the
    /// O(n²) triangle. The computed values are identical to a fresh
    /// [`build`](Self::build) — buffer reuse never changes a distance.
    pub fn build_into(
        n: usize,
        scratch: Vec<f32>,
        metric: impl Fn(usize, usize) -> f32 + Sync + Send,
    ) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        let mut values = scratch;
        values.clear();
        if pairs < PARALLEL_MIN_PAIRS {
            values.extend((0..pairs).map(|p| {
                let (i, j) = unflatten(p, n);
                metric(i, j)
            }));
            return Self { n, values };
        }
        values.resize(pairs, 0.0);
        // The condensed triangle is row-contiguous: split it into one
        // mutable slice per row and fill rows in parallel. Same values as
        // the flat pair loop, just a different work partition.
        let mut rows: Vec<(usize, &mut [f32])> = Vec::with_capacity(n - 1);
        let mut rest = values.as_mut_slice();
        for i in 0..n - 1 {
            let (head, tail) = rest.split_at_mut(n - 1 - i);
            rows.push((i, head));
            rest = tail;
        }
        rows.into_par_iter()
            .map(|(i, row)| {
                for (offset, v) in row.iter_mut().enumerate() {
                    *v = metric(i, i + 1 + offset);
                }
            })
            .collect::<Vec<()>>();
        Self { n, values }
    }

    /// Squared L2 distances between the flattened parameters of every pair
    /// of updates — the matrix Krum scores against.
    pub fn squared_l2(updates: &[&ClientUpdate]) -> Self {
        Self::squared_l2_into(updates, Vec::new())
    }

    /// [`squared_l2`](Self::squared_l2) into a reused buffer.
    pub fn squared_l2_into(updates: &[&ClientUpdate], scratch: Vec<f32>) -> Self {
        Self::build_into(updates.len(), scratch, |i, j| {
            let d = updates[i].params.l2_distance(&updates[j].params);
            d * d
        })
    }

    /// Squared L2 distances between *clip-scaled* update deltas:
    /// `‖sᵢ·δᵢ − sⱼ·δⱼ‖²` for flattened deltas `δ` and per-update clip
    /// scales `s`. This is the distance between the effective updates
    /// `GM + sᵢ·δᵢ` a clipping stage admits — what a selection rule must
    /// rank once any update has been norm-bounded, lest it score ghosts
    /// the aggregation will never apply.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` and `scales` lengths differ.
    pub fn squared_l2_scaled(deltas: &[safeloc_nn::Matrix], scales: &[f32]) -> Self {
        assert_eq!(
            deltas.len(),
            scales.len(),
            "one clip scale per update delta"
        );
        Self::build(deltas.len(), |i, j| {
            deltas[i]
                .as_slice()
                .iter()
                .zip(deltas[j].as_slice())
                .map(|(&a, &b)| {
                    let d = scales[i] * a - scales[j] * b;
                    d * d
                })
                .sum()
        })
    }

    /// Cosine distances (`1 − cos`) between flattened update deltas — the
    /// metric FEDCC-style clustering groups by. `deltas` are the flattened
    /// `LM − GM` rows.
    pub fn cosine(deltas: &[safeloc_nn::Matrix]) -> Self {
        Self::cosine_into(deltas, Vec::new())
    }

    /// [`cosine`](Self::cosine) into a reused buffer.
    pub fn cosine_into(deltas: &[safeloc_nn::Matrix], scratch: Vec<f32>) -> Self {
        let norms: Vec<f32> = deltas.iter().map(|d| d.l2_norm()).collect();
        Self::build_into(deltas.len(), scratch, |i, j| {
            let denom = norms[i] * norms[j];
            if denom == 0.0 {
                1.0
            } else {
                1.0 - deltas[i].flat_dot(&deltas[j]) / denom
            }
        })
    }

    /// Dismantles the matrix into its value buffer, for reuse as the
    /// `scratch` of a later round's [`build_into`](Self::build_into).
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// Number of points the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.n && j < self.n, "distance index out of range");
        if i == j {
            return 0.0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.values[condensed_index(lo, hi, self.n)]
    }

    /// All distances from point `i` to its peers (excluding itself),
    /// appended to `out`.
    pub fn distances_from(&self, i: usize, out: &mut Vec<f32>) {
        out.clear();
        for j in 0..self.n {
            if j != i {
                out.push(self.get(i, j));
            }
        }
    }

    /// The pair `(i, j)` with the largest distance, or `None` for fewer
    /// than two points. Ties resolve to the first pair in row-major order.
    pub fn max_pair(&self) -> Option<(usize, usize, f32)> {
        if self.n < 2 {
            return None;
        }
        let mut best = (0usize, 1usize, f32::NEG_INFINITY);
        for p in 0..self.values.len() {
            if self.values[p] > best.2 {
                let (i, j) = unflatten(p, self.n);
                best = (i, j, self.values[p]);
            }
        }
        Some(best)
    }
}

/// Index of pair `(i, j)` with `i < j` in the condensed upper triangle.
#[inline]
fn condensed_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    // Row i starts after all previous rows: sum_{r<i} (n-1-r).
    i * (n - 1) - i * (i + 1) / 2 + (j - 1)
}

/// Inverse of [`condensed_index`]: pair for flat position `p`.
#[inline]
fn unflatten(p: usize, n: usize) -> (usize, usize) {
    // Find row i such that row_start(i) <= p < row_start(i+1).
    let mut i = 0;
    let mut start = 0;
    loop {
        let row_len = n - 1 - i;
        if p < start + row_len {
            return (i, i + 1 + (p - start));
        }
        start += row_len;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::Matrix;

    #[test]
    fn condensed_layout_round_trips() {
        for n in 2..10 {
            let mut p = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(condensed_index(i, j, n), p);
                    assert_eq!(unflatten(p, n), (i, j));
                    p += 1;
                }
            }
        }
    }

    #[test]
    fn symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::build(5, |i, j| (i * 10 + j) as f32);
        for i in 0..5 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn matches_direct_metric() {
        let pts = [0.0f32, 1.5, -2.0, 7.0];
        let m = DistanceMatrix::build(4, |i, j| (pts[i] - pts[j]).abs());
        for i in 0..4 {
            for j in 0..4 {
                assert!((m.get(i, j) - (pts[i] - pts[j]).abs()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn distances_from_excludes_self() {
        let m = DistanceMatrix::build(4, |i, j| (i + j) as f32);
        let mut out = Vec::new();
        m.distances_from(2, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out, vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn max_pair_finds_extreme() {
        let m = DistanceMatrix::build(4, |i, j| if (i, j) == (1, 3) { 9.0 } else { 1.0 });
        assert_eq!(m.max_pair(), Some((1, 3, 9.0)));
        assert_eq!(DistanceMatrix::build(1, |_, _| 0.0).max_pair(), None);
    }

    #[test]
    fn cosine_of_identical_directions_is_zero() {
        let a = Matrix::row_vector(&[1.0, 0.0]);
        let b = Matrix::row_vector(&[2.0, 0.0]);
        let c = Matrix::row_vector(&[0.0, 3.0]);
        let z = Matrix::row_vector(&[0.0, 0.0]);
        let m = DistanceMatrix::cosine(&[a, b, c, z]);
        assert!(m.get(0, 1).abs() < 1e-6, "parallel vectors");
        assert!((m.get(0, 2) - 1.0).abs() < 1e-6, "orthogonal vectors");
        assert!((m.get(0, 3) - 1.0).abs() < 1e-6, "zero vector convention");
    }

    #[test]
    fn build_into_reuses_the_buffer_and_matches_a_fresh_build() {
        let metric = |i: usize, j: usize| ((i * 13 + j * 3) % 31) as f32;
        // Big enough for the parallel path, shrinking across rounds.
        let fresh = DistanceMatrix::build(12, metric);
        let prior = DistanceMatrix::build(20, |i, j| (i + j) as f32);
        let scratch = prior.into_values();
        let cap = scratch.capacity();
        let reused = DistanceMatrix::build_into(12, scratch, metric);
        assert_eq!(reused, fresh, "buffer reuse changed a distance");
        assert_eq!(
            reused.into_values().capacity(),
            cap,
            "the O(n²) buffer was reallocated instead of reused"
        );
        // The serial path reuses too.
        let tiny_fresh = DistanceMatrix::build(3, metric);
        let tiny = DistanceMatrix::build_into(3, vec![9.0; 50], metric);
        assert_eq!(tiny, tiny_fresh);
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        // 20 points -> 190 pairs, well above the serial cutoff.
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| DistanceMatrix::build(20, |i, j| ((i * 31 + j * 7) % 97) as f32));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| DistanceMatrix::build(20, |i, j| ((i * 31 + j * 7) % 97) as f32));
        assert_eq!(serial, parallel);
    }
}
