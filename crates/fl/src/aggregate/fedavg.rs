//! Federated averaging (McMahan et al.) — FEDLOC's aggregation rule.

use super::Aggregator;
use crate::report::{AggregationOutcome, UpdateDecision};
use crate::update::ClientUpdate;
use safeloc_nn::NamedParams;

/// Sample-weighted federated averaging: the next GM is the weighted mean of
/// the client LMs. No defense whatsoever — this is why FEDLOC collapses
/// under poisoning in Figs. 1 and 6. Every update is accepted; its decision
/// records the sample-count share it contributed with.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl Aggregator for FedAvg {
    fn aggregate_filtered(
        &mut self,
        global: &NamedParams,
        updates: &[&ClientUpdate],
    ) -> AggregationOutcome {
        let total: f32 = updates.iter().map(|u| u.num_samples.max(1) as f32).sum();
        let mut acc = global.scale(0.0);
        let mut decisions = Vec::with_capacity(updates.len());
        for u in updates {
            let w = u.num_samples.max(1) as f32 / total;
            acc.axpy(w, &u.params);
            decisions.push(UpdateDecision::Accepted { weight: w });
        }
        AggregationOutcome {
            params: acc,
            decisions,
        }
    }

    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn clone_box(&self) -> Box<dyn Aggregator> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    use super::*;

    #[test]
    fn equal_weights_average() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u = vec![
            update(0, &[2.0, 0.0], &[1.0]),
            update(1, &[0.0, 4.0], &[3.0]),
        ];
        let out = FedAvg.aggregate(&g, &u);
        assert_eq!(out.params.get("layer0.w").unwrap().as_slice(), &[1.0, 2.0]);
        assert_eq!(out.params.get("layer0.b").unwrap().as_slice(), &[2.0]);
        assert_eq!(out.accepted(), 2);
    }

    #[test]
    fn sample_counts_weight_the_mean_and_the_decisions() {
        let g = params(&[0.0], &[0.0]);
        let mut a = update(0, &[0.0], &[0.0]);
        let mut b = update(1, &[4.0], &[4.0]);
        a.num_samples = 30;
        b.num_samples = 10;
        let out = FedAvg.aggregate(&g, &[a, b]);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(
            out.decisions[0],
            UpdateDecision::Accepted { weight: 0.75 },
            "decision must record the sample share"
        );
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[1.0, 2.0], &[3.0]);
        let out = FedAvg.aggregate(&g, &[]);
        assert_eq!(out.params, g);
        assert!(out.decisions.is_empty());
    }

    #[test]
    fn non_finite_updates_are_dropped() {
        let g = params(&[0.0], &[0.0]);
        let good = update(0, &[2.0], &[2.0]);
        let bad = update(1, &[f32::NAN], &[0.0]);
        let out = FedAvg.aggregate(&g, &[good, bad]);
        assert_eq!(out.params.get("layer0.w").unwrap().as_slice(), &[2.0]);
        assert!(!out.params.has_non_finite());
        assert_eq!(out.rejected(), 1);
    }

    #[test]
    fn identical_updates_are_a_fixed_point() {
        let g = params(&[1.0, -1.0], &[0.5]);
        let u = vec![
            ClientUpdate::new(0, g.clone(), 5),
            ClientUpdate::new(1, g.clone(), 5),
        ];
        assert_eq!(FedAvg.aggregate(&g, &u).params, g);
    }
}
