//! Federated averaging (McMahan et al.) — FEDLOC's aggregation rule,
//! now the sample-weighted-mean [`Combiner`] of the defense-pipeline API.

use crate::defense::{Combiner, RoundContext, Verdicts};
use safeloc_nn::NamedParams;

/// Sample-weighted federated averaging: the next GM is the weighted mean
/// of the surviving LMs, each weighted by its sample-count share. As the
/// whole defense ([`DefensePipeline::fedavg`](crate::defense::DefensePipeline::fedavg),
/// no screening stages) this is FEDLOC's rule — no defense whatsoever,
/// which is why FEDLOC collapses under poisoning in Figs. 1 and 6. Behind
/// screening stages it is the vanilla terminal most layered defenses end
/// in.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl Combiner for FedAvg {
    fn name(&self) -> &'static str {
        "sample-mean"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        let updates = ctx.updates();
        let total: f32 = active
            .iter()
            .map(|&i| updates[i].num_samples.max(1) as f32)
            .sum();
        let mut acc = ctx.global().scale(0.0);
        for &i in &active {
            let w = updates[i].num_samples.max(1) as f32 / total;
            acc.axpy(w, verdicts.effective(ctx, i).as_ref());
            verdicts.set_weight(i, w);
        }
        acc
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    #[allow(unused_imports)]
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::report::UpdateDecision;
    use crate::{Aggregator, ClientUpdate};

    fn fedavg() -> DefensePipeline {
        DefensePipeline::fedavg()
    }

    #[test]
    fn equal_weights_average() {
        let g = params(&[0.0, 0.0], &[0.0]);
        let u = vec![
            update(0, &[2.0, 0.0], &[1.0]),
            update(1, &[0.0, 4.0], &[3.0]),
        ];
        let out = fedavg().aggregate(&g, &u);
        assert_eq!(out.params.get("layer0.w").unwrap().as_slice(), &[1.0, 2.0]);
        assert_eq!(out.params.get("layer0.b").unwrap().as_slice(), &[2.0]);
        assert_eq!(out.accepted(), 2);
    }

    #[test]
    fn sample_counts_weight_the_mean_and_the_decisions() {
        let g = params(&[0.0], &[0.0]);
        let mut a = update(0, &[0.0], &[0.0]);
        let mut b = update(1, &[4.0], &[4.0]);
        a.num_samples = 30;
        b.num_samples = 10;
        let out = fedavg().aggregate(&g, &[a, b]);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(
            out.decisions[0],
            UpdateDecision::Accepted { weight: 0.75 },
            "decision must record the sample share"
        );
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[1.0, 2.0], &[3.0]);
        let out = fedavg().aggregate(&g, &[]);
        assert_eq!(out.params, g);
        assert!(out.decisions.is_empty());
    }

    #[test]
    fn non_finite_updates_are_dropped() {
        let g = params(&[0.0], &[0.0]);
        let good = update(0, &[2.0], &[2.0]);
        let bad = update(1, &[f32::NAN], &[0.0]);
        let out = fedavg().aggregate(&g, &[good, bad]);
        assert_eq!(out.params.get("layer0.w").unwrap().as_slice(), &[2.0]);
        assert!(!out.params.has_non_finite());
        assert_eq!(out.rejected(), 1);
    }

    #[test]
    fn identical_updates_are_a_fixed_point() {
        let g = params(&[1.0, -1.0], &[0.5]);
        let u = vec![
            ClientUpdate::new(0, g.clone(), 5),
            ClientUpdate::new(1, g.clone(), 5),
        ];
        assert_eq!(fedavg().aggregate(&g, &u).params, g);
    }
}
