//! FEDHIL-style selective weight aggregation, now a tensor-level
//! [`Combiner`] of the defense-pipeline API.

use crate::defense::{Combiner, RoundContext, Verdicts};
use safeloc_nn::NamedParams;
use std::borrow::Cow;

/// Selective per-tensor aggregation, following the paper's §II summary of
/// FEDHIL: "a domain-specific selective weight aggregation technique that
/// averages only specific weight tensors to mitigate bias from individual
/// clients".
///
/// Only the *upper* (classifier-side) fraction of tensor positions is
/// federated-averaged across the surviving updates; the lower
/// feature-extraction tensors keep the global model's values. The
/// rationale in FEDHIL is heterogeneity: early layers absorb
/// device-specific bias and are better kept stable, while the shared
/// classifier layers carry the collaborative signal.
///
/// This reproduces FEDHIL's Fig. 1 asymmetry exactly: label-flipping
/// poison lives in the aggregated classifier tensors and passes through
/// (3.9× mean error growth — *worse* than FEDLOC's 3.5×), while backdoor
/// poison that corrupts feature layers is partially blocked (3.25× vs.
/// FEDLOC's 6.5×). The defense is tensor-level, never update-level, so it
/// rejects nothing — which is why it composes naturally behind screening
/// stages that do.
#[derive(Debug, Clone, Copy)]
pub struct SelectiveAggregator {
    /// Fraction of tensor positions (from the output side) that are
    /// aggregated; the rest keep the GM values.
    pub aggregate_fraction: f32,
}

impl SelectiveAggregator {
    /// Creates the combiner averaging the top `aggregate_fraction` of
    /// tensors.
    pub fn new(aggregate_fraction: f32) -> Self {
        Self { aggregate_fraction }
    }
}

impl Default for SelectiveAggregator {
    fn default() -> Self {
        Self::new(0.5)
    }
}

impl Combiner for SelectiveAggregator {
    fn name(&self) -> &'static str {
        "selective"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        let global = ctx.global();
        let n_tensors = global.len();
        let k = ((self.aggregate_fraction.clamp(0.0, 1.0)) * n_tensors as f32).ceil() as usize;
        let first_aggregated = n_tensors - k.min(n_tensors);
        let scale = 1.0 / active.len() as f32;
        let sources: Vec<Cow<'_, NamedParams>> =
            active.iter().map(|&i| verdicts.effective(ctx, i)).collect();

        let mut out = global.clone();
        for (idx, (name, tensor)) in out.iter_mut().enumerate() {
            if idx < first_aggregated {
                continue; // feature-side tensor: keep the GM values
            }
            let mut acc = tensor.scale(0.0);
            for p in &sources {
                acc.axpy(scale, p.get(name).expect("architectures match"));
            }
            *tensor = acc;
        }
        for &i in &active {
            verdicts.set_weight(i, scale);
        }
        out
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    #[allow(unused_imports)]
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::Aggregator;

    fn selective(fraction: f32) -> DefensePipeline {
        DefensePipeline::selective(fraction)
    }

    #[test]
    fn upper_tensors_aggregate_lower_keep_gm() {
        // params() builds [layer0.w, layer0.b]; with fraction 0.5 only the
        // second tensor (bias, classifier side) is aggregated.
        let g = params(&[1.0], &[1.0]);
        let u = vec![update(0, &[5.0], &[3.0]), update(1, &[9.0], &[5.0])];
        let out = selective(0.5).aggregate(&g, &u);
        assert_eq!(
            out.params.get("layer0.w").unwrap().get(0, 0),
            1.0,
            "feature tensor changed"
        );
        assert_eq!(
            out.params.get("layer0.b").unwrap().get(0, 0),
            4.0,
            "classifier tensor not averaged"
        );
        assert_eq!(out.accepted(), 2, "selective never rejects whole updates");
    }

    #[test]
    fn fraction_one_is_fedavg() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[2.0]), update(1, &[4.0], &[4.0])];
        let out = selective(1.0).aggregate(&g, &u);
        assert_eq!(out.params.get("layer0.w").unwrap().get(0, 0), 3.0);
        assert_eq!(out.params.get("layer0.b").unwrap().get(0, 0), 3.0);
    }

    #[test]
    fn fraction_zero_keeps_gm() {
        let g = params(&[1.0], &[2.0]);
        let u = vec![update(0, &[9.0], &[9.0])];
        let out = selective(0.0).aggregate(&g, &u);
        assert_eq!(out.params, g);
    }

    #[test]
    fn identical_updates_are_a_fixed_point() {
        let g = params(&[2.0], &[3.0]);
        let u = vec![
            ClientUpdate::new(0, g.clone(), 1),
            ClientUpdate::new(1, g.clone(), 1),
        ];
        let out = selective(0.5).aggregate(&g, &u);
        assert_eq!(out.params, g);
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[1.0], &[1.0]);
        assert_eq!(selective(0.5).aggregate(&g, &[]).params, g);
    }

    #[test]
    fn classifier_side_poison_passes_feature_poison_blocked() {
        // Documents the FEDHIL asymmetry the paper's Fig. 1 shows.
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[0.0], &[0.0]),
            update(1, &[30.0], &[30.0]), // poisons both tensors
        ];
        let out = selective(0.5).aggregate(&g, &u);
        assert_eq!(
            out.params.get("layer0.w").unwrap().get(0, 0),
            0.0,
            "feature poison leaked"
        );
        assert_eq!(
            out.params.get("layer0.b").unwrap().get(0, 0),
            15.0,
            "classifier poison blocked"
        );
    }

    #[test]
    fn non_finite_updates_dropped() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[1.0], &[1.0]), update(1, &[f32::NAN], &[1.0])];
        let out = selective(1.0).aggregate(&g, &u);
        assert!(!out.params.has_non_finite());
        assert_eq!(out.params.get("layer0.w").unwrap().get(0, 0), 1.0);
        assert_eq!(out.rejected(), 1);
    }

    use crate::update::ClientUpdate;
}
