//! FEDCC-style clustering: group updates by similarity, keep the majority
//! cluster — now a screening [`DefenseStage`] of the defense-pipeline API.

use crate::defense::{DefenseStage, RoundContext, Verdicts};
use safeloc_nn::Matrix;

/// Clustering defense following the paper's §II summary of FEDCC:
/// "clustering techniques to group LMs based on gradient similarity,
/// allowing it to detect and exclude poisoned updates".
///
/// The update deltas (LM − GM, from the round's shared
/// [`RoundContext::deltas`]) are split by 2-means with cosine distance;
/// the minority cluster is rejected with rule `"cluster"` and the cosine
/// distance to the kept centroid as score, leaving the majority for the
/// pipeline's combiner (a [`UniformMean`](crate::defense::UniformMean) in
/// the canonical FEDCC composition,
/// [`DefensePipeline::cluster`](crate::defense::DefensePipeline::cluster)).
/// When the two clusters are nearly indistinguishable (no attack), or the
/// round is too small to cluster meaningfully (≤ 2 survivors), everything
/// is kept.
///
/// The known failure mode — reproduced in Fig. 6 — is that under strong
/// *backdoor* perturbations honest heterogeneous clients scatter enough
/// that legitimate updates land in the minority cluster and get dropped.
#[derive(Debug, Clone, Copy)]
pub struct ClusterAggregator {
    /// Minimum cosine separation between centroids for the split to count
    /// as an attack; below this everything is kept.
    pub separation_threshold: f32,
}

impl ClusterAggregator {
    /// Creates the stage with the given separation threshold.
    pub fn new(separation_threshold: f32) -> Self {
        Self {
            separation_threshold,
        }
    }
}

impl Default for ClusterAggregator {
    fn default() -> Self {
        Self::new(0.15)
    }
}

fn cosine(a: &Matrix, b: &Matrix) -> f32 {
    let dot = a.flat_dot(b);
    let na = a.l2_norm();
    let nb = b.l2_norm();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine distance in `[0, 2]`.
fn cos_dist(a: &Matrix, b: &Matrix) -> f32 {
    1.0 - cosine(a, b)
}

impl DefenseStage for ClusterAggregator {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn screen(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) {
        let active = verdicts.active_indices();
        let n = active.len();
        if n <= 2 {
            // Too few to cluster meaningfully; keep everything.
            return;
        }

        let deltas = ctx.deltas();
        // Deterministic 2-means seeding: the active pair with maximal
        // cosine distance becomes the initial centroids. All pairwise
        // cosine distances come from the shared round matrix (computed
        // once, in parallel) instead of a bespoke O(n²·d) double loop.
        let pairwise = ctx.cosine();
        let mut best = (active[0], active[1], f32::NEG_INFINITY);
        for (slot, &i) in active.iter().enumerate() {
            for &j in &active[slot + 1..] {
                let d = pairwise.get(i, j);
                if d > best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (ca, cb, separation) = best;
        if separation < self.separation_threshold {
            // No meaningful split — keep everyone.
            return;
        }

        let mut centroid_a = deltas[ca].clone();
        let mut centroid_b = deltas[cb].clone();
        let mut assignment = vec![0u8; n];
        for _ in 0..10 {
            let mut changed = false;
            for (slot, &i) in active.iter().enumerate() {
                let d = &deltas[i];
                let side = if cos_dist(d, &centroid_a) <= cos_dist(d, &centroid_b) {
                    0
                } else {
                    1
                };
                if assignment[slot] != side {
                    assignment[slot] = side;
                    changed = true;
                }
            }
            // Recompute centroids.
            for side in 0..2u8 {
                let members: Vec<&Matrix> = active
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == side)
                    .map(|(&i, _)| &deltas[i])
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let mut acc = members[0].scale(0.0);
                for m in &members {
                    acc.axpy(1.0 / members.len() as f32, m);
                }
                if side == 0 {
                    centroid_a = acc;
                } else {
                    centroid_b = acc;
                }
            }
            if !changed {
                break;
            }
        }

        let count_a = assignment.iter().filter(|&&a| a == 0).count();
        let majority: u8 = if count_a * 2 >= n { 0 } else { 1 };
        let kept_centroid = if majority == 0 {
            &centroid_a
        } else {
            &centroid_b
        };
        for (&i, &a) in active.iter().zip(&assignment) {
            if a != majority {
                verdicts.reject(i, "cluster", cos_dist(&deltas[i], kept_centroid));
            }
        }
    }

    fn clone_stage(&self) -> Box<dyn DefenseStage> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::report::UpdateDecision;
    use crate::Aggregator;

    fn cluster() -> DefensePipeline {
        DefensePipeline::cluster(ClusterAggregator::default().separation_threshold)
    }

    #[test]
    fn majority_cluster_wins() {
        let g = params(&[0.0, 0.0], &[0.0]);
        // Four honest updates pointing one way, two poisoned the other way.
        let u = vec![
            update(0, &[1.0, 0.1], &[0.0]),
            update(1, &[1.1, 0.0], &[0.0]),
            update(2, &[0.9, 0.05], &[0.0]),
            update(3, &[1.0, -0.05], &[0.0]),
            update(4, &[-5.0, 5.0], &[0.0]),
            update(5, &[-5.2, 5.1], &[0.0]),
        ];
        let out = cluster().aggregate(&g, &u);
        let w0 = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.8..=1.2).contains(&w0), "poisoned cluster won: {w0}");
        // The two poisoned updates are the rejected minority, scored far
        // from the kept centroid.
        assert_eq!(out.accepted(), 4);
        for d in &out.decisions[4..] {
            match d {
                UpdateDecision::Rejected { rule, score } => {
                    assert_eq!(rule, "cluster");
                    assert!(*score > 0.5, "minority score too close: {score}");
                }
                other => panic!("poisoned update accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn homogeneous_updates_all_aggregate() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.01], &[0.0]),
            update(2, &[0.99], &[0.0]),
        ];
        let out = cluster().aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((w - 1.0).abs() < 0.05);
        assert_eq!(out.accepted(), 3);
    }

    #[test]
    fn two_or_fewer_updates_average() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[0.0]), update(1, &[4.0], &[0.0])];
        let out = cluster().aggregate(&g, &u);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[5.0], &[5.0]);
        assert_eq!(cluster().aggregate(&g, &[]).params, g);
    }

    #[test]
    fn ties_keep_the_first_cluster() {
        // 2 vs 2: majority rule keeps cluster 0 (count_a * 2 >= n).
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.0], &[0.0]),
            update(2, &[-1.0], &[0.0]),
            update(3, &[-1.0], &[0.0]),
        ];
        let out = cluster().aggregate(&g, &u);
        assert!(!out.params.has_non_finite());
        assert_eq!(out.accepted() + out.rejected(), 4);
    }

    /// A composition the monolith could never express: the cluster screen
    /// feeding Krum selection instead of a mean — the minority cluster is
    /// gone before Krum scores, so its colluders cannot vote for each
    /// other.
    #[test]
    fn cluster_screen_composes_with_krum_selection() {
        use crate::aggregate::Krum;
        let g = params(&[0.0, 0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0, 0.1], &[0.0]),
            update(1, &[1.1, 0.0], &[0.0]),
            update(2, &[0.9, 0.05], &[0.0]),
            update(3, &[-5.0, 5.0], &[0.0]),
            update(4, &[-5.2, 5.1], &[0.0]),
        ];
        let mut p = DefensePipeline::new(
            "cluster+krum",
            vec![Box::new(ClusterAggregator::default())],
            Box::new(Krum::new(1)),
        );
        let out = p.aggregate(&g, &u);
        assert_eq!(out.accepted(), 1, "Krum selects one of the kept cluster");
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.8..=1.2).contains(&w), "selected from the minority: {w}");
        // Both rules appear in the decision trail.
        let rules: Vec<&str> = out
            .decisions
            .iter()
            .filter_map(|d| match d {
                UpdateDecision::Rejected { rule, .. } => Some(rule.as_str()),
                _ => None,
            })
            .collect();
        assert!(rules.contains(&"cluster") && rules.contains(&"krum"));
    }
}
