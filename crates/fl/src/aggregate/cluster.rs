//! FEDCC-style clustering aggregation: group updates by similarity, keep
//! the majority cluster.

use super::{Aggregator, DistanceMatrix};
use crate::report::{AggregationOutcome, UpdateDecision};
use crate::update::ClientUpdate;
use rayon::prelude::*;
use safeloc_nn::{Matrix, NamedParams};

/// Clustering defense following the paper's §II summary of FEDCC:
/// "clustering techniques to group LMs based on gradient similarity,
/// allowing it to detect and exclude poisoned updates".
///
/// The update deltas (LM − GM) are flattened and split by 2-means with
/// cosine distance; the larger cluster is federated-averaged. When the two
/// clusters are nearly indistinguishable (no attack), everything is kept.
/// Minority-cluster members show up in the decision trail as rejected by
/// `"cluster"` with their cosine distance to the kept centroid as score.
///
/// The known failure mode — reproduced in Fig. 6 — is that under strong
/// *backdoor* perturbations honest heterogeneous clients scatter enough
/// that legitimate updates land in the minority cluster and get dropped.
#[derive(Debug, Clone, Copy)]
pub struct ClusterAggregator {
    /// Minimum cosine separation between centroids for the split to count
    /// as an attack; below this everything is aggregated.
    pub separation_threshold: f32,
}

impl ClusterAggregator {
    /// Creates the aggregator with the given separation threshold.
    pub fn new(separation_threshold: f32) -> Self {
        Self {
            separation_threshold,
        }
    }
}

impl Default for ClusterAggregator {
    fn default() -> Self {
        Self::new(0.15)
    }
}

fn cosine(a: &Matrix, b: &Matrix) -> f32 {
    let dot = a.flat_dot(b);
    let na = a.l2_norm();
    let nb = b.l2_norm();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine distance in `[0, 2]`.
fn cos_dist(a: &Matrix, b: &Matrix) -> f32 {
    1.0 - cosine(a, b)
}

impl Aggregator for ClusterAggregator {
    fn aggregate_filtered(
        &mut self,
        global: &NamedParams,
        updates: &[&ClientUpdate],
    ) -> AggregationOutcome {
        if updates.len() <= 2 {
            // Too few to cluster meaningfully; plain average.
            let snaps: Vec<NamedParams> = updates.iter().map(|u| u.params.clone()).collect();
            return AggregationOutcome::all_accepted(NamedParams::mean(&snaps), updates.len());
        }

        let deltas: Vec<Matrix> = updates
            .par_iter()
            .map(|u| u.params.delta(global).flatten())
            .collect();

        // Deterministic 2-means seeding: the pair with maximal cosine
        // distance becomes the initial centroids. All pairwise cosine
        // distances come from the shared round matrix (computed once, in
        // parallel) instead of a bespoke O(n²·d) double loop.
        let n = deltas.len();
        let pairwise = DistanceMatrix::cosine(&deltas);
        let (ca, cb, best) = pairwise.max_pair().expect("n > 2 by the guard above");
        if best < self.separation_threshold {
            // No meaningful split — aggregate everyone.
            let snaps: Vec<NamedParams> = updates.iter().map(|u| u.params.clone()).collect();
            return AggregationOutcome::all_accepted(NamedParams::mean(&snaps), n);
        }

        let mut centroid_a = deltas[ca].clone();
        let mut centroid_b = deltas[cb].clone();
        let mut assignment = vec![0u8; n];
        for _ in 0..10 {
            let mut changed = false;
            for (i, d) in deltas.iter().enumerate() {
                let side = if cos_dist(d, &centroid_a) <= cos_dist(d, &centroid_b) {
                    0
                } else {
                    1
                };
                if assignment[i] != side {
                    assignment[i] = side;
                    changed = true;
                }
            }
            // Recompute centroids.
            for side in 0..2u8 {
                let members: Vec<&Matrix> = deltas
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == side)
                    .map(|(d, _)| d)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let mut acc = members[0].scale(0.0);
                for m in &members {
                    acc.axpy(1.0 / members.len() as f32, m);
                }
                if side == 0 {
                    centroid_a = acc;
                } else {
                    centroid_b = acc;
                }
            }
            if !changed {
                break;
            }
        }

        let count_a = assignment.iter().filter(|&&a| a == 0).count();
        let majority: u8 = if count_a * 2 >= n { 0 } else { 1 };
        let kept_centroid = if majority == 0 {
            &centroid_a
        } else {
            &centroid_b
        };
        let kept: Vec<NamedParams> = updates
            .iter()
            .zip(&assignment)
            .filter(|(_, &a)| a == majority)
            .map(|(u, _)| u.params.clone())
            .collect();
        let weight = 1.0 / kept.len().max(1) as f32;
        let decisions = deltas
            .iter()
            .zip(&assignment)
            .map(|(d, &a)| {
                if a == majority {
                    UpdateDecision::Accepted { weight }
                } else {
                    UpdateDecision::Rejected {
                        rule: "cluster".to_string(),
                        score: cos_dist(d, kept_centroid),
                    }
                }
            })
            .collect();
        AggregationOutcome {
            params: NamedParams::mean(&kept),
            decisions,
        }
    }

    fn name(&self) -> &'static str {
        "Cluster"
    }

    fn clone_box(&self) -> Box<dyn Aggregator> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{params, update};
    use super::*;

    #[test]
    fn majority_cluster_wins() {
        let g = params(&[0.0, 0.0], &[0.0]);
        // Four honest updates pointing one way, two poisoned the other way.
        let u = vec![
            update(0, &[1.0, 0.1], &[0.0]),
            update(1, &[1.1, 0.0], &[0.0]),
            update(2, &[0.9, 0.05], &[0.0]),
            update(3, &[1.0, -0.05], &[0.0]),
            update(4, &[-5.0, 5.0], &[0.0]),
            update(5, &[-5.2, 5.1], &[0.0]),
        ];
        let out = ClusterAggregator::default().aggregate(&g, &u);
        let w0 = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((0.8..=1.2).contains(&w0), "poisoned cluster won: {w0}");
        // The two poisoned updates are the rejected minority, scored far
        // from the kept centroid.
        assert_eq!(out.accepted(), 4);
        for d in &out.decisions[4..] {
            match d {
                UpdateDecision::Rejected { rule, score } => {
                    assert_eq!(rule, "cluster");
                    assert!(*score > 0.5, "minority score too close: {score}");
                }
                other => panic!("poisoned update accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn homogeneous_updates_all_aggregate() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.01], &[0.0]),
            update(2, &[0.99], &[0.0]),
        ];
        let out = ClusterAggregator::default().aggregate(&g, &u);
        let w = out.params.get("layer0.w").unwrap().get(0, 0);
        assert!((w - 1.0).abs() < 0.05);
        assert_eq!(out.accepted(), 3);
    }

    #[test]
    fn two_or_fewer_updates_average() {
        let g = params(&[0.0], &[0.0]);
        let u = vec![update(0, &[2.0], &[0.0]), update(1, &[4.0], &[0.0])];
        let out = ClusterAggregator::default().aggregate(&g, &u);
        assert!((out.params.get("layer0.w").unwrap().get(0, 0) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[5.0], &[5.0]);
        assert_eq!(ClusterAggregator::default().aggregate(&g, &[]).params, g);
    }

    #[test]
    fn ties_keep_the_first_cluster() {
        // 2 vs 2: majority rule keeps cluster 0 (count_a * 2 >= n).
        let g = params(&[0.0], &[0.0]);
        let u = vec![
            update(0, &[1.0], &[0.0]),
            update(1, &[1.0], &[0.0]),
            update(2, &[-1.0], &[0.0]),
            update(3, &[-1.0], &[0.0]),
        ];
        let out = ClusterAggregator::default().aggregate(&g, &u);
        assert!(!out.params.has_non_finite());
        assert_eq!(out.accepted() + out.rejected(), 4);
    }
}
