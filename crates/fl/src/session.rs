//! Composable FL sessions: framework + fleet + plan stream in one value.
//!
//! An [`FlSession`] owns everything a federated deployment needs — the
//! [`Framework`], the client fleet, and a seeded [`CohortSampler`]
//! producing one [`RoundPlan`](crate::RoundPlan) per round — and yields a [`RoundReport`]
//! per executed round. The benchmark harness, the paper-figure binaries
//! and the examples all drive rounds through a session; calling
//! [`Framework::run_round`] by hand is for engines and tests.
//!
//! ```
//! use safeloc_fl::{
//!     Client, CohortSampler, DefensePipeline, FlSession, Framework, SequentialFlServer,
//!     ServerConfig,
//! };
//! use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
//!
//! let data = BuildingDataset::generate(Building::tiny(3), &DatasetConfig::tiny(), 3);
//! let mut server = SequentialFlServer::new(
//!     &[data.building.num_aps(), 32, data.building.num_rps()],
//!     Box::new(DefensePipeline::fedavg()),
//!     ServerConfig::tiny(),
//! );
//! server.pretrain(&data.server_train);
//! let mut session = FlSession::builder(Box::new(server))
//!     .clients(Client::from_dataset(&data, 1))
//!     .sampler(CohortSampler::uniform(2, 7).with_dropout(0.1))
//!     .build();
//! for report in session.run(3) {
//!     assert!(report.clients.len() <= 2);
//! }
//! assert_eq!(session.rounds_run(), 3);
//! ```

use crate::client::Client;
use crate::framework::Framework;
use crate::report::{pooled_rate, RoundReport};
use crate::round::CohortSampler;
use safeloc_nn::NamedParams;

/// A hook observing every aggregated global model a session produces —
/// the bridge from training to serving.
///
/// Attached via [`FlSessionBuilder::publisher`], the hook runs after each
/// executed round with that round's [`RoundReport`] and the
/// post-aggregation global parameters. The serving layer implements this
/// to push hardened models into its hot-swappable registry while traffic
/// is being served; tests implement it to record trajectories.
///
/// `Send` because sessions (and their publishers) run on background
/// threads next to live inference traffic.
pub trait ModelPublisher: Send {
    /// Called once per executed round, after aggregation.
    fn publish_round(&mut self, report: &RoundReport, global: &NamedParams);
}

/// Builder for [`FlSession`] — see the module docs for a full example.
pub struct FlSessionBuilder {
    framework: Box<dyn Framework>,
    clients: Vec<Client>,
    sampler: CohortSampler,
    publisher: Option<Box<dyn ModelPublisher>>,
}

impl FlSessionBuilder {
    /// Sets the client fleet.
    pub fn clients(mut self, clients: Vec<Client>) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the cohort sampler (default: full participation, no churn —
    /// the paper's round shape).
    pub fn sampler(mut self, sampler: CohortSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Attaches a [`ModelPublisher`] observing every round's aggregated
    /// global model (default: none).
    pub fn publisher(mut self, publisher: Box<dyn ModelPublisher>) -> Self {
        self.publisher = Some(publisher);
        self
    }

    /// Finalizes the session.
    ///
    /// # Panics
    ///
    /// Panics if the sampler is not usable over the configured fleet —
    /// e.g. a [`CohortStrategy::Weighted`](crate::CohortStrategy::Weighted)
    /// weight vector whose length differs from the fleet size, which would
    /// silently make the tail of the fleet unsampleable.
    pub fn build(self) -> FlSession {
        if let Err(problem) = self.sampler.validate_for_fleet(self.clients.len()) {
            panic!("FlSession: {problem}");
        }
        FlSession {
            framework: self.framework,
            clients: self.clients,
            sampler: self.sampler,
            publisher: self.publisher,
            history: Vec::new(),
        }
    }
}

/// A running federated deployment: framework + fleet + plan stream.
///
/// The session numbers rounds from the count it has run itself; a
/// framework that already ran rounds before being handed over keeps its
/// own (higher) internal counter for [`RoundReport::round`].
pub struct FlSession {
    framework: Box<dyn Framework>,
    clients: Vec<Client>,
    sampler: CohortSampler,
    publisher: Option<Box<dyn ModelPublisher>>,
    history: Vec<RoundReport>,
}

impl FlSession {
    /// Starts building a session around a (typically pretrained)
    /// framework.
    pub fn builder(framework: Box<dyn Framework>) -> FlSessionBuilder {
        FlSessionBuilder {
            framework,
            clients: Vec::new(),
            sampler: CohortSampler::full(),
            publisher: None,
        }
    }

    /// Executes the next round: draws the plan, runs it, records the
    /// report, notifies the publisher (if any) and returns the report.
    pub fn next_round(&mut self) -> &RoundReport {
        let plan = self.sampler.plan(self.history.len(), self.clients.len());
        let report = self.framework.run_round(&mut self.clients, &plan);
        if let Some(publisher) = &mut self.publisher {
            publisher.publish_round(&report, &self.framework.global_params());
        }
        self.history.push(report);
        self.history.last().expect("just pushed")
    }

    /// Runs `n` more rounds and returns their reports.
    pub fn run(&mut self, n: usize) -> &[RoundReport] {
        let start = self.history.len();
        for _ in 0..n {
            self.next_round();
        }
        &self.history[start..]
    }

    /// Rounds executed by this session.
    pub fn rounds_run(&self) -> usize {
        self.history.len()
    }

    /// Every report so far, in round order.
    pub fn reports(&self) -> &[RoundReport] {
        &self.history
    }

    /// The framework under the session.
    pub fn framework(&self) -> &dyn Framework {
        self.framework.as_ref()
    }

    /// Mutable framework access (e.g. for τ sweeps between rounds).
    pub fn framework_mut(&mut self) -> &mut dyn Framework {
        self.framework.as_mut()
    }

    /// The client fleet.
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Mutable fleet access (e.g. to compromise a client mid-session).
    pub fn clients_mut(&mut self) -> &mut [Client] {
        &mut self.clients
    }

    /// Pooled attacker-rejection rate over every round run so far, or
    /// `None` if no malicious client ever delivered an update.
    pub fn attacker_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.history.iter(), RoundReport::attacker_rejection_rate)
    }

    /// Pooled honest-rejection rate over every round run so far.
    pub fn honest_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.history.iter(), RoundReport::honest_rejection_rate)
    }

    /// Dismantles the session into framework, fleet and report history.
    pub fn into_parts(self) -> (Box<dyn Framework>, Vec<Client>, Vec<RoundReport>) {
        (self.framework, self.clients, self.history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::round::RoundPlan;
    use crate::server::{SequentialFlServer, ServerConfig};
    use safeloc_attacks::{Attack, PoisonInjector};
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
    use safeloc_nn::HasParams;

    fn dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(4), &DatasetConfig::tiny(), 4)
    }

    fn pretrained(data: &BuildingDataset, agg: Box<dyn crate::Aggregator>) -> SequentialFlServer {
        let mut s = SequentialFlServer::new(
            &[data.building.num_aps(), 24, data.building.num_rps()],
            agg,
            ServerConfig::tiny(),
        );
        s.pretrain(&data.server_train);
        s
    }

    #[test]
    fn full_session_matches_manual_run_round_bitwise() {
        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));

        let mut manual = server.clone();
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        for _ in 0..3 {
            manual.run_round(&mut clients, &plan);
        }

        let mut session = FlSession::builder(Box::new(server))
            .clients(Client::from_dataset(&data, 0))
            .build();
        session.run(3);

        assert_eq!(
            session.framework().global_params(),
            manual.global_model().snapshot(),
            "session with the default sampler diverged from manual full rounds"
        );
        assert_eq!(session.rounds_run(), 3);
        assert!(session
            .reports()
            .iter()
            .all(|r| r.accepted() == session.clients().len()));
    }

    #[test]
    fn partial_sessions_report_smaller_cohorts() {
        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));
        let mut session = FlSession::builder(Box::new(server))
            .clients(Client::from_dataset(&data, 0))
            .sampler(CohortSampler::uniform(2, 5))
            .build();
        session.run(4);
        assert!(session.reports().iter().all(|r| r.clients.len() == 2));
    }

    #[test]
    fn krum_session_surfaces_attacker_rejections() {
        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::krum(1)));
        let mut clients = Client::from_dataset(&data, 0);
        let last = clients.len() - 1;
        clients[last].injector =
            Some(PoisonInjector::new(Attack::label_flip(1.0), 3).with_boost(6.0));
        let mut session = FlSession::builder(Box::new(server))
            .clients(clients)
            .build();
        session.run(3);
        let rate = session
            .attacker_rejection_rate()
            .expect("attacker participated");
        assert!(
            rate > 0.5,
            "Krum should reject the boosted label-flipper most rounds: {rate}"
        );
        let honest = session
            .honest_rejection_rate()
            .expect("honest participated");
        assert!(honest < 1.0, "Krum rejected every honest update: {honest}");
    }

    #[test]
    #[should_panic(expected = "one weight per client")]
    fn weighted_sampler_with_wrong_length_is_rejected_at_build() {
        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));
        let clients = Client::from_dataset(&data, 0);
        // One weight short: the last client would silently never be drawn.
        let weights = vec![1.0; clients.len() - 1];
        let _ = FlSession::builder(Box::new(server))
            .clients(clients)
            .sampler(CohortSampler::weighted(2, weights, 5))
            .build();
    }

    #[test]
    fn data_volume_weighted_sampler_builds_and_runs() {
        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));
        let clients = Client::from_dataset(&data, 0);
        let sampler = CohortSampler::weighted_by_data_volume(2, &clients, 9);
        let mut session = FlSession::builder(Box::new(server))
            .clients(clients)
            .sampler(sampler)
            .build();
        session.run(3);
        assert!(session.reports().iter().all(|r| r.clients.len() == 2));
    }

    #[test]
    fn all_zero_weights_yield_empty_rounds_and_keep_the_gm() {
        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));
        let clients = Client::from_dataset(&data, 0);
        let before = server.global_model().snapshot();
        let n = clients.len();
        let mut session = FlSession::builder(Box::new(server))
            .clients(clients)
            .sampler(CohortSampler::weighted(3, vec![0.0; n], 5))
            .build();
        session.run(2);
        assert!(session.reports().iter().all(|r| r.clients.is_empty()));
        assert_eq!(
            session.framework().global_params(),
            before,
            "empty cohorts must not move the GM"
        );
    }

    #[test]
    fn publisher_sees_every_round_gm_in_order() {
        use std::sync::{Arc, Mutex};

        struct Recorder {
            log: Arc<Mutex<Vec<(usize, crate::report::RoundReport, safeloc_nn::NamedParams)>>>,
        }
        impl ModelPublisher for Recorder {
            fn publish_round(
                &mut self,
                report: &crate::report::RoundReport,
                global: &safeloc_nn::NamedParams,
            ) {
                let mut log = self.log.lock().unwrap();
                let n = log.len();
                log.push((n, report.clone(), global.clone()));
            }
        }

        let data = dataset();
        let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut session = FlSession::builder(Box::new(server))
            .clients(Client::from_dataset(&data, 0))
            .publisher(Box::new(Recorder { log: log.clone() }))
            .build();
        session.run(3);

        let log = log.lock().unwrap();
        assert_eq!(log.len(), 3, "one publish per executed round");
        // The publisher saw the same reports the session recorded, and the
        // final published GM is the session's final GM, bitwise.
        for (i, (seq, report, _)) in log.iter().enumerate() {
            assert_eq!(*seq, i);
            assert_eq!(report.round, session.reports()[i].round);
        }
        assert_eq!(log.last().unwrap().2, session.framework().global_params());
    }

    #[test]
    fn session_is_deterministic_given_seeds() {
        let data = dataset();
        let run = || {
            let server = pretrained(&data, Box::new(DefensePipeline::fedavg()));
            let mut session = FlSession::builder(Box::new(server))
                .clients(Client::from_dataset(&data, 0))
                .sampler(
                    CohortSampler::uniform(3, 9)
                        .with_dropout(0.2)
                        .with_straggle(0.2),
                )
                .build();
            session.run(4);
            let (framework, _, reports) = session.into_parts();
            (
                framework.global_params(),
                reports.into_iter().map(|r| r.clients).collect::<Vec<_>>(),
            )
        };
        let (gm_a, outcomes_a) = run();
        let (gm_b, outcomes_b) = run();
        assert_eq!(gm_a, gm_b);
        assert_eq!(outcomes_a, outcomes_b);
    }
}
