//! Round planning: who participates in a federated round, and how.
//!
//! The paper (and the seed implementation) only ever runs one round shape:
//! every client participates, every round. Production FL is defined by
//! partial participation and client churn — the exact regimes where
//! poisoning defenses degrade (Fang et al., arXiv:1911.11815). A
//! [`RoundPlan`] makes the round shape an explicit, inspectable value:
//! which clients the server contacts this round (the *cohort*) and what
//! each of them does ([`Availability`]). Plans are produced by a seeded
//! [`CohortSampler`], so any scenario — full participation, uniform-k
//! subsampling, weighted selection, dropouts, stragglers — is reproducible
//! bit for bit.

use crate::client::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a cohort member does during the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Availability {
    /// Trains and returns its update before the round deadline.
    Participates,
    /// Never responds (powered off, out of range): no local training runs.
    DropsOut,
    /// Trains but misses the round deadline; the server aggregates without
    /// it and discards the late update unseen, so the engine skips
    /// computing it.
    Straggles,
}

/// The server's plan for one federated round: the sampled cohort and each
/// member's [`Availability`].
///
/// Cohort entries are `(client_index, availability)` pairs, where
/// `client_index` is the position in the fleet slice handed to
/// [`Framework::run_round`](crate::Framework::run_round). Entries are kept
/// sorted by client index — [`RoundPlan::new`] sorts — so update collection
/// and report assembly walk the fleet in one deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundPlan {
    cohort: Vec<(usize, Availability)>,
}

impl RoundPlan {
    /// Creates a plan from cohort entries (sorted by client index; if an
    /// index repeats, the entry listed first wins).
    pub fn new(mut cohort: Vec<(usize, Availability)>) -> Self {
        cohort.sort_by_key(|(i, _)| *i);
        cohort.dedup_by_key(|(i, _)| *i);
        Self { cohort }
    }

    /// The seed round shape: every one of `n_clients` participates.
    pub fn full(n_clients: usize) -> Self {
        Self {
            cohort: (0..n_clients)
                .map(|i| (i, Availability::Participates))
                .collect(),
        }
    }

    /// The sampled cohort, sorted by client index.
    pub fn cohort(&self) -> &[(usize, Availability)] {
        &self.cohort
    }

    /// Number of cohort members (any availability).
    pub fn cohort_size(&self) -> usize {
        self.cohort.len()
    }

    /// Client indices that actually train and deliver an update this
    /// round, in fleet order.
    pub fn active_indices(&self) -> Vec<usize> {
        self.cohort
            .iter()
            .filter(|(_, a)| *a == Availability::Participates)
            .map(|(i, _)| *i)
            .collect()
    }

    /// `true` if every one of `n_clients` participates — the shape whose
    /// results must be bitwise identical to the seed `round` path.
    pub fn is_full_participation(&self, n_clients: usize) -> bool {
        self.cohort.len() == n_clients
            && self
                .cohort
                .iter()
                .enumerate()
                .all(|(slot, (i, a))| *i == slot && *a == Availability::Participates)
    }
}

/// How the cohort is drawn from the fleet each round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CohortStrategy {
    /// Every client is contacted every round (the paper's protocol).
    Full,
    /// A uniform sample of `k` clients without replacement.
    UniformK(usize),
    /// `k` clients drawn without replacement with probability proportional
    /// to the given per-client weights (e.g. data volume or link quality).
    /// Clients with non-positive weight are never sampled.
    Weighted {
        /// Cohort size.
        k: usize,
        /// One non-negative weight per client. The vector must be exactly
        /// fleet-sized: a shorter list would silently make the tail of the
        /// fleet unsampleable (missing entries read as weight zero), so
        /// [`FlSession`](crate::FlSession) rejects any length mismatch at
        /// build time (see [`CohortSampler::validate_for_fleet`]).
        weights: Vec<f32>,
    },
}

/// Seeded generator of [`RoundPlan`]s: cohort selection plus per-client
/// churn (dropouts and stragglers).
///
/// Same seed ⇒ identical plan stream, independent of thread count — plans
/// are drawn from a dedicated RNG stream per `(seed, round)`, so the
/// sampler can be queried out of order and still reproduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSampler {
    /// Cohort selection strategy.
    pub strategy: CohortStrategy,
    /// Probability that a sampled client never responds.
    pub dropout_rate: f64,
    /// Probability that a sampled, non-dropped client misses the deadline.
    pub straggle_rate: f64,
    /// Master seed for the plan stream.
    pub seed: u64,
}

impl CohortSampler {
    /// Full participation, no churn — generates exactly the seed round
    /// shape. The seed is irrelevant for this strategy.
    pub fn full() -> Self {
        Self {
            strategy: CohortStrategy::Full,
            dropout_rate: 0.0,
            straggle_rate: 0.0,
            seed: 0,
        }
    }

    /// Uniform-k sampling without churn.
    pub fn uniform(k: usize, seed: u64) -> Self {
        Self {
            strategy: CohortStrategy::UniformK(k),
            dropout_rate: 0.0,
            straggle_rate: 0.0,
            seed,
        }
    }

    /// Weight-proportional sampling without churn.
    pub fn weighted(k: usize, weights: Vec<f32>, seed: u64) -> Self {
        Self {
            strategy: CohortStrategy::Weighted { k, weights },
            dropout_rate: 0.0,
            straggle_rate: 0.0,
            seed,
        }
    }

    /// Weight-proportional sampling with one weight per client, derived
    /// from its local data volume (sample count) — production FL's usual
    /// heuristic: clients with more data contribute richer updates. The
    /// weight vector is exactly fleet-sized by construction, so it always
    /// passes [`FlSession`](crate::FlSession)'s length validation.
    pub fn weighted_by_data_volume(k: usize, clients: &[Client], seed: u64) -> Self {
        let weights = clients.iter().map(|c| c.local.len() as f32).collect();
        Self::weighted(k, weights, seed)
    }

    /// Sets the per-round dropout probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_dropout(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "dropout rate {rate}");
        self.dropout_rate = rate;
        self
    }

    /// Sets the per-round straggler probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_straggle(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "straggle rate {rate}");
        self.straggle_rate = rate;
        self
    }

    /// Checks the sampler is usable over a fleet of `n_clients`: a
    /// [`CohortStrategy::Weighted`] weight vector must be exactly
    /// fleet-sized, since missing entries read as weight zero and silently
    /// make the tail of the fleet unsampleable.
    ///
    /// # Errors
    ///
    /// Returns a message describing the mismatch.
    pub fn validate_for_fleet(&self, n_clients: usize) -> Result<(), String> {
        if let CohortStrategy::Weighted { weights, .. } = &self.strategy {
            if weights.len() != n_clients {
                return Err(format!(
                    "weighted cohort sampling needs one weight per client: \
                     got {} weights for a fleet of {n_clients}",
                    weights.len()
                ));
            }
        }
        Ok(())
    }

    /// Draws the plan for `round` over a fleet of `n_clients`.
    pub fn plan(&self, round: usize, n_clients: usize) -> RoundPlan {
        // The fast path stays allocation-of-RNG free and — crucially —
        // bit-exact with the pre-session engine: full participation never
        // consults the RNG at all when there is no churn.
        if matches!(self.strategy, CohortStrategy::Full)
            && self.dropout_rate == 0.0
            && self.straggle_rate == 0.0
        {
            return RoundPlan::full(n_clients);
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let selected: Vec<usize> = match &self.strategy {
            CohortStrategy::Full => (0..n_clients).collect(),
            CohortStrategy::UniformK(k) => sample_uniform(n_clients, *k, &mut rng),
            CohortStrategy::Weighted { k, weights } => {
                sample_weighted(n_clients, *k, weights, &mut rng)
            }
        };
        let cohort = selected
            .into_iter()
            .map(|i| {
                let availability = if rng.gen_bool(self.dropout_rate) {
                    Availability::DropsOut
                } else if rng.gen_bool(self.straggle_rate) {
                    Availability::Straggles
                } else {
                    Availability::Participates
                };
                (i, availability)
            })
            .collect();
        RoundPlan::new(cohort)
    }
}

/// `k` indices from `0..n` uniformly without replacement (partial
/// Fisher–Yates), returned unsorted — [`RoundPlan::new`] sorts.
fn sample_uniform(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let k = k.min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    for slot in 0..k {
        let j = rng.gen_range(slot..n);
        pool.swap(slot, j);
    }
    pool.truncate(k);
    pool
}

/// `k` indices from `0..n` without replacement, probability proportional
/// to `weights` (missing entries count as zero).
fn sample_weighted(n: usize, k: usize, weights: &[f32], rng: &mut StdRng) -> Vec<usize> {
    let mut remaining: Vec<(usize, f32)> = (0..n)
        .map(|i| (i, weights.get(i).copied().unwrap_or(0.0).max(0.0)))
        .filter(|(_, w)| *w > 0.0)
        .collect();
    let mut out = Vec::with_capacity(k.min(n));
    while out.len() < k && !remaining.is_empty() {
        let total: f32 = remaining.iter().map(|(_, w)| w).sum();
        let mut target = rng.gen_unit_f32() * total;
        let mut pick = remaining.len() - 1;
        for (slot, (_, w)) in remaining.iter().enumerate() {
            if target < *w {
                pick = slot;
                break;
            }
            target -= w;
        }
        out.push(remaining.swap_remove(pick).0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_is_full_participation() {
        let p = RoundPlan::full(4);
        assert_eq!(p.cohort_size(), 4);
        assert!(p.is_full_participation(4));
        assert!(!p.is_full_participation(5));
        assert_eq!(p.active_indices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn plans_sort_and_dedup_the_cohort() {
        let p = RoundPlan::new(vec![
            (3, Availability::Participates),
            (1, Availability::DropsOut),
            (3, Availability::Straggles),
        ]);
        assert_eq!(p.cohort_size(), 2);
        assert_eq!(p.cohort()[0].0, 1);
        assert_eq!(p.active_indices(), vec![3]);
    }

    #[test]
    fn full_sampler_reproduces_the_seed_round_shape() {
        let s = CohortSampler::full();
        for round in 0..5 {
            assert_eq!(s.plan(round, 6), RoundPlan::full(6));
        }
    }

    #[test]
    fn uniform_k_has_exact_cohort_size_and_is_seed_deterministic() {
        let s = CohortSampler::uniform(3, 7);
        for round in 0..10 {
            let a = s.plan(round, 6);
            let b = s.plan(round, 6);
            assert_eq!(a, b, "same (seed, round) must reproduce");
            assert_eq!(a.cohort_size(), 3);
            assert!(a.cohort().iter().all(|(i, _)| *i < 6));
        }
        // Different rounds draw different cohorts at least once.
        let distinct = (0..10)
            .map(|r| s.plan(r, 6))
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0] != w[1]);
        assert!(distinct, "plan stream is constant across rounds");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<RoundPlan> = (0..8)
            .map(|r| CohortSampler::uniform(3, 1).plan(r, 8))
            .collect();
        let b: Vec<RoundPlan> = (0..8)
            .map(|r| CohortSampler::uniform(3, 2).plan(r, 8))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn weighted_sampling_respects_zero_weights() {
        let s = CohortSampler::weighted(2, vec![0.0, 1.0, 1.0, 0.0], 3);
        for round in 0..20 {
            let p = s.plan(round, 4);
            assert!(p.cohort().iter().all(|(i, _)| *i == 1 || *i == 2));
            assert_eq!(p.cohort_size(), 2);
        }
    }

    #[test]
    fn weighted_sampling_prefers_heavy_clients() {
        let s = CohortSampler::weighted(1, vec![0.05, 0.05, 10.0], 11);
        let heavy = (0..50).filter(|&r| s.plan(r, 3).cohort()[0].0 == 2).count();
        assert!(heavy > 35, "heavy client drawn only {heavy}/50 times");
    }

    #[test]
    fn churn_marks_dropouts_and_stragglers() {
        let s = CohortSampler::full().with_dropout(0.3).with_straggle(0.3);
        let mut dropped = 0;
        let mut straggled = 0;
        let mut participated = 0;
        for round in 0..40 {
            for (_, a) in s.plan(round, 6).cohort() {
                match a {
                    Availability::DropsOut => dropped += 1,
                    Availability::Straggles => straggled += 1,
                    Availability::Participates => participated += 1,
                }
            }
        }
        assert!(dropped > 0, "no dropouts at rate 0.3");
        assert!(straggled > 0, "no stragglers at rate 0.3");
        assert!(participated > 0, "nobody participates");
    }

    #[test]
    fn uniform_k_larger_than_fleet_clamps() {
        let p = CohortSampler::uniform(10, 5).plan(0, 3);
        assert_eq!(p.cohort_size(), 3);
    }

    #[test]
    fn k_zero_draws_an_empty_cohort() {
        let p = CohortSampler::uniform(0, 5).plan(0, 4);
        assert_eq!(p.cohort_size(), 0);
        assert!(p.active_indices().is_empty());
        let pw = CohortSampler::weighted(0, vec![1.0; 4], 5).plan(0, 4);
        assert_eq!(pw.cohort_size(), 0);
    }

    #[test]
    fn weighted_k_larger_than_fleet_clamps_to_positive_weights() {
        let p = CohortSampler::weighted(9, vec![1.0, 0.0, 2.0], 5).plan(0, 3);
        assert_eq!(p.cohort_size(), 2, "only positive-weight clients sampled");
        assert!(p.cohort().iter().all(|(i, _)| *i == 0 || *i == 2));
    }

    #[test]
    fn all_zero_weights_draw_an_empty_cohort() {
        let s = CohortSampler::weighted(3, vec![0.0; 5], 7);
        for round in 0..5 {
            assert_eq!(s.plan(round, 5).cohort_size(), 0);
        }
    }

    #[test]
    fn fleet_validation_flags_short_and_long_weight_vectors() {
        let short = CohortSampler::weighted(2, vec![1.0, 1.0], 3);
        assert!(short.validate_for_fleet(4).is_err());
        assert!(short.validate_for_fleet(2).is_ok());
        let long = CohortSampler::weighted(2, vec![1.0; 6], 3);
        assert!(long.validate_for_fleet(4).is_err());
        assert!(CohortSampler::uniform(2, 3).validate_for_fleet(99).is_ok());
        assert!(CohortSampler::full().validate_for_fleet(0).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let s = CohortSampler::uniform(2, 9).with_dropout(0.1);
        let json = serde_json::to_string(&s).unwrap();
        let back: CohortSampler = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let p = s.plan(4, 6);
        let pj = serde_json::to_string(&p).unwrap();
        let pb: RoundPlan = serde_json::from_str(&pj).unwrap();
        assert_eq!(p, pb);
    }
}
