//! Client → server model updates.

use safeloc_nn::NamedParams;
use serde::{Deserialize, Serialize};

/// A local model returned to the server after client-side training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientUpdate {
    /// Which client produced the update.
    pub client_id: usize,
    /// The full LM weights (not a delta — aggregation rules that want the
    /// delta compute it against the current GM).
    pub params: NamedParams,
    /// Number of local samples trained on (FedAvg weighting).
    pub num_samples: usize,
}

impl ClientUpdate {
    /// Creates an update.
    pub fn new(client_id: usize, params: NamedParams, num_samples: usize) -> Self {
        Self {
            client_id,
            params,
            num_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::Matrix;

    #[test]
    fn holds_what_it_was_given() {
        let p = NamedParams::new(vec![("w".into(), Matrix::zeros(2, 2))]);
        let u = ClientUpdate::new(3, p.clone(), 40);
        assert_eq!(u.client_id, 3);
        assert_eq!(u.num_samples, 40);
        assert_eq!(u.params, p);
    }
}
