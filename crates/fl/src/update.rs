//! Client → server model updates.

use crate::delta::DeltaRepr;
use safeloc_nn::NamedParams;
use serde::{Deserialize, Serialize};

/// A local model returned to the server after client-side training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientUpdate {
    /// Which client produced the update.
    pub client_id: usize,
    /// The full LM weights (not a delta — aggregation rules that want the
    /// delta compute it against the current GM). For a compressed update
    /// these are the *re-materialized* weights `GM + decode(repr)`, so
    /// defenses screen exactly what crossed the wire.
    pub params: NamedParams,
    /// Number of local samples trained on (FedAvg weighting).
    pub num_samples: usize,
    /// The representation this update travels in (dense for the exact,
    /// bitwise-pinned path; updates serialized before the delta refactor
    /// default to dense).
    #[serde(default = "DeltaRepr::default")]
    pub repr: DeltaRepr,
}

impl ClientUpdate {
    /// Creates a dense (uncompressed) update — the exact seed path.
    pub fn new(client_id: usize, params: NamedParams, num_samples: usize) -> Self {
        Self {
            client_id,
            params,
            num_samples,
            repr: DeltaRepr::Dense,
        }
    }

    /// Creates an update carrying an explicit wire representation.
    pub fn with_repr(
        client_id: usize,
        params: NamedParams,
        num_samples: usize,
        repr: DeltaRepr,
    ) -> Self {
        Self {
            client_id,
            params,
            num_samples,
            repr,
        }
    }

    /// Parameter bytes this update occupies on the wire (see
    /// [`DeltaRepr::wire_bytes`]).
    pub fn wire_bytes(&self) -> usize {
        self.repr.wire_bytes(self.params.num_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::Matrix;

    #[test]
    fn holds_what_it_was_given() {
        let p = NamedParams::new(vec![("w".into(), Matrix::zeros(2, 2))]);
        let u = ClientUpdate::new(3, p.clone(), 40);
        assert_eq!(u.client_id, 3);
        assert_eq!(u.num_samples, 40);
        assert_eq!(u.params, p);
        assert_eq!(u.repr, DeltaRepr::Dense);
        assert_eq!(u.wire_bytes(), 4 * 4);
    }

    #[test]
    fn updates_serialized_before_the_delta_refactor_still_parse() {
        let p = NamedParams::new(vec![("w".into(), Matrix::zeros(1, 2))]);
        let u = ClientUpdate::new(1, p, 8);
        let json = serde_json::to_string(&u).unwrap();
        let without = json.replace(",\"repr\":\"Dense\"", "");
        assert_ne!(json, without, "fixture no longer serializes the field");
        let back: ClientUpdate = serde_json::from_str(&without).unwrap();
        assert_eq!(back, u);
    }
}
