//! The uniform interface the benchmark harness drives.

use crate::aggregate::Aggregator;
use crate::client::Client;
use crate::report::RoundReport;
use crate::round::RoundPlan;
use safeloc_dataset::FingerprintSet;
use safeloc_nn::{Matrix, NamedParams};

/// A complete FL indoor-localization framework: one global model plus one
/// aggregation rule plus the client-side protocol.
///
/// Implemented by [`SequentialFlServer`](crate::SequentialFlServer) (and the
/// named baselines wrapping it in `safeloc-baselines`) and by the `safeloc`
/// crate's `SafeLoc` framework. The benchmark harness treats every framework
/// identically: `pretrain` → repeated [`Framework::run_round`] → `predict`.
/// Most callers should not drive `run_round` by hand: an
/// [`FlSession`](crate::FlSession) owns the framework, the fleet and the
/// plan stream, and yields one [`RoundReport`] per round.
///
/// `Send` is a supertrait so boxed frameworks (and the sessions that own
/// them) can move across threads: the scenario-suite engine fans cells out
/// over a thread pool, and the serving harness runs an `FlSession` on a
/// background thread while inference traffic is served concurrently.
pub trait Framework: Send {
    /// Framework name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Server-side pretraining of the global model on the survey split.
    fn pretrain(&mut self, train: &FingerprintSet);

    /// One federated round under `plan`: distribute the GM to the plan's
    /// participating cohort, let each train (and possibly poison),
    /// aggregate, and report per-client outcomes and timings.
    ///
    /// A [`RoundPlan::full`] plan must reproduce the seed engine's round
    /// bit for bit (pinned by `tests/round_lifecycle.rs`).
    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport;

    /// Predicted RP labels for a batch of fingerprints.
    fn predict(&self, x: &Matrix) -> Vec<usize>;

    /// Total deployed parameter count (Table I).
    fn num_params(&self) -> usize;

    /// Snapshot of the *aggregated* global model — the weights a federated
    /// round rewrites. Frameworks with server-side side models (e.g.
    /// ONLAD's calibrated detector) exclude them: they are not part of the
    /// round trajectory.
    fn global_params(&self) -> NamedParams;

    /// Boxed clone — lets the bench harness pretrain a framework once and
    /// fork it across attack scenarios.
    fn clone_box(&self) -> Box<dyn Framework>;

    /// Replaces the framework's server-side defense with another
    /// [`Aggregator`] — in practice a composed
    /// [`DefensePipeline`](crate::defense::DefensePipeline) — keeping the
    /// trained global model and the client-side protocol. This is how a
    /// scenario spec sweeps defense compositions over one pretrained
    /// framework (the `DefenseSpec` axis in `safeloc-bench`).
    ///
    /// The default declines: frameworks whose defense is inseparable from
    /// their protocol can refuse, and the suite surfaces the message as a
    /// cell error instead of silently running the wrong defense.
    ///
    /// # Errors
    ///
    /// A message explaining why this framework's defense cannot be
    /// replaced.
    fn set_aggregator(&mut self, aggregator: Box<dyn Aggregator>) -> Result<(), String> {
        let _ = aggregator;
        Err(format!(
            "{} does not support replacing its server-side defense",
            self.name()
        ))
    }

    /// Classification accuracy helper.
    fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        let pred = self.predict(x);
        pred.iter().zip(labels).filter(|(p, y)| p == y).count() as f32 / labels.len() as f32
    }
}
