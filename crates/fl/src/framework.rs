//! The uniform interface the benchmark harness drives.

use crate::client::Client;
use safeloc_dataset::FingerprintSet;
use safeloc_nn::Matrix;

/// A complete FL indoor-localization framework: one global model plus one
/// aggregation rule plus the client-side protocol.
///
/// Implemented by [`SequentialFlServer`](crate::SequentialFlServer) (and the
/// named baselines wrapping it in `safeloc-baselines`) and by the `safeloc`
/// crate's `SafeLoc` framework. The benchmark harness treats every framework
/// identically: `pretrain` → repeated `round` → `predict`.
pub trait Framework {
    /// Framework name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Server-side pretraining of the global model on the survey split.
    fn pretrain(&mut self, train: &FingerprintSet);

    /// One federated round: distribute the GM, let every client train (and
    /// possibly poison), aggregate.
    fn round(&mut self, clients: &mut [Client]);

    /// Predicted RP labels for a batch of fingerprints.
    fn predict(&self, x: &Matrix) -> Vec<usize>;

    /// Total deployed parameter count (Table I).
    fn num_params(&self) -> usize;

    /// Boxed clone — lets the bench harness pretrain a framework once and
    /// fork it across attack scenarios.
    fn clone_box(&self) -> Box<dyn Framework>;

    /// Classification accuracy helper.
    fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        let pred = self.predict(x);
        pred.iter().zip(labels).filter(|(p, y)| p == y).count() as f32 / labels.len() as f32
    }

    /// Runs `n` federated rounds.
    fn run_rounds(&mut self, clients: &mut [Client], n: usize) {
        for _ in 0..n {
            self.round(clients);
        }
    }
}
