//! Hand-rolled federated-learning engine for the SAFELOC reproduction.
//!
//! The paper's setting (§III): a central server holds a global model (GM),
//! distributes it to clients (phones), each client retrains a local model
//! (LM) on its own fingerprints — possibly poisoned — and the server
//! aggregates the returned LMs into the next GM.
//!
//! This crate provides the pieces every framework shares:
//!
//! * [`Client`] — local data + optional [`PoisonInjector`](safeloc_attacks::PoisonInjector),
//!   with the client-side training protocol in [`LocalTrainConfig`].
//! * [`ClientUpdate`] — an LM come back to the server as
//!   [`NamedParams`](safeloc_nn::NamedParams).
//! * [`Aggregator`] — the server-side combination rule, returning an
//!   [`AggregationOutcome`] (next GM + per-update accept/reject decisions).
//!   Its production implementor is the composable
//!   [`DefensePipeline`]: ordered
//!   [`defense::DefenseStage`]s that screen updates through
//!   a shared lazily-built [`defense::RoundContext`]
//!   (deltas, norms, distance matrices — computed once per round), then
//!   one terminal [`defense::Combiner`]. The paper's rules are
//!   the building blocks: [`FedAvg`], [`Krum`] and [`SelectiveAggregator`]
//!   (FEDHIL) are combiners; [`ClusterAggregator`] (FEDCC),
//!   [`LatentFilterAggregator`] (FEDLS) and the opt-in [`HistoryScreen`]
//!   are screening stages; generic [`defense::NormClip`],
//!   [`defense::TrimmedMean`] and [`defense::CoordinateMedian`] open the
//!   robust-aggregation literature's compositions. SAFELOC's saliency
//!   combiner lives in the `safeloc` crate — it is the paper's
//!   contribution. Every pipeline inherits the shared
//!   empty-round/non-finite guard ([`aggregate::aggregate_or_clone`]) from
//!   the trait's provided entry point, and reports per-stage rejections
//!   and wall time through [`report::StageTelemetry`].
//! * **Round lifecycle** — a seeded [`CohortSampler`] draws one
//!   [`RoundPlan`] per round (full, uniform-k or weighted cohorts —
//!   including [`CohortSampler::weighted_by_data_volume`], which derives
//!   weights from per-client sample counts; per-client dropouts and
//!   stragglers); [`Framework::run_round`] executes a plan and returns a
//!   [`RoundReport`] recording what happened to every cohort member —
//!   trained (with aggregation weight), dropped out, straggled, or
//!   rejected by a named defense rule with its score.
//! * [`FlSession`] — framework + fleet + plan stream in one value; the
//!   harness and examples drive rounds through it.
//! * [`SequentialFlServer`] — a complete FL server around a
//!   [`Sequential`](safeloc_nn::Sequential) DNN global model; every baseline
//!   framework is this server with a different architecture + aggregator.
//! * [`Framework`] — the uniform interface the benchmark harness drives:
//!   pretrain → federated rounds → predict.
//!
//! Clients within a round train in parallel (they are independent by
//! construction); results are collected in client order and every client
//! draws from its own seed stream, so rounds are bitwise-identical for any
//! thread count and cohort membership never perturbs another client's
//! stream.
//!
//! # Example
//!
//! ```
//! use safeloc_fl::{Client, DefensePipeline, FlSession, Framework, SequentialFlServer, ServerConfig};
//! use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
//!
//! let data = BuildingDataset::generate(Building::tiny(3), &DatasetConfig::tiny(), 3);
//! let mut server = SequentialFlServer::new(
//!     &[data.building.num_aps(), 32, data.building.num_rps()],
//!     Box::new(DefensePipeline::fedavg()),
//!     ServerConfig::tiny(),
//! );
//! server.pretrain(&data.server_train);
//! let mut session = FlSession::builder(Box::new(server))
//!     .clients(Client::from_dataset(&data, 1))
//!     .build();
//! let report = session.next_round();
//! assert_eq!(report.accepted(), session.clients().len());
//! let acc = session
//!     .framework()
//!     .accuracy(&data.client_test[0].x, &data.client_test[0].labels);
//! assert!(acc > 0.2, "accuracy {acc}");
//! ```

pub mod aggregate;
pub mod client;
pub mod defense;
pub mod delta;
pub mod fleet;
pub mod framework;
pub mod metrics;
pub mod report;
pub mod round;
pub mod server;
pub mod session;
pub mod update;

pub use aggregate::{
    Aggregator, ClusterAggregator, FedAvg, HistoryScreen, Krum, LatentFilterAggregator,
    SelectiveAggregator,
};
pub use client::{Client, LabelingMode, LocalTrainConfig};
pub use defense::{Combiner, DefensePipeline, DefenseStage};
pub use delta::{DeltaCompressor, DeltaRepr, DeltaSpec};
pub use fleet::{FleetProvider, MaterializedFleet, StreamingFlSession};
pub use framework::Framework;
pub use metrics::{fl_metrics, FlMetrics};
pub use report::{
    pooled_rate, pooled_stage_telemetry, AggregationOutcome, ClientOutcome, ClientReport,
    RoundReport, StageTelemetry, UpdateDecision,
};
pub use round::{Availability, CohortSampler, CohortStrategy, RoundPlan};
pub use server::{active_clients, SequentialFlServer, ServerConfig};
pub use session::{FlSession, FlSessionBuilder, ModelPublisher};
pub use update::ClientUpdate;
