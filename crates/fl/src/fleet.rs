//! Streaming fleets: city-scale rounds with cohort-bounded memory.
//!
//! [`FlSession`](crate::FlSession) owns its whole fleet as `Vec<Client>`,
//! which is the right shape for paper-scale experiments (tens of clients)
//! but materializes every client's local fingerprints up front — at
//! city scale (10⁴–10⁵ phones) the fleet dominates peak RSS even though a
//! round only ever touches its cohort. [`StreamingFlSession`] bounds peak
//! memory by cohort size instead: a [`FleetProvider`] materializes exactly
//! the clients a round's [`RoundPlan`] names, the framework runs over that
//! slice, and the provider reclaims them afterwards.
//!
//! Determinism is preserved by construction:
//!
//! * [`Client::single_from_dataset`] builds client `i` exactly as
//!   [`Client::from_dataset`] would (same `seed ^ ((i+1) << 32)` stream),
//!   so a stateless client rebuilt next round is bitwise the client that
//!   was dropped.
//! * The cohort slice is ordered by fleet index (plans sort on
//!   construction) and the remapped plan preserves per-client
//!   [`Availability`](crate::Availability), so the framework sees the same active clients in
//!   the same order as a materialized run.
//! * Round reports keep true fleet identities: report entries carry
//!   `Client::id`, not the cohort slot.
//!
//! Providers only need to persist clients with round-to-round state — a
//! poison injector's RNG stream or a [`DeltaCompressor`](crate::DeltaCompressor)'s error-feedback
//! residual ([`Client::has_round_state`]). Everything else can be rebuilt
//! on demand.

use crate::client::Client;
use crate::framework::Framework;
use crate::report::{pooled_rate, RoundReport};
use crate::round::{CohortSampler, RoundPlan};
use crate::session::ModelPublisher;

impl Client {
    /// `true` if the client carries state that must survive between
    /// rounds: a poison injector (whose RNG stream advances per round) or
    /// a compressor that has accumulated an error-feedback residual.
    /// Stateless clients rebuild bitwise-identically from their seed, so
    /// streaming fleets may drop them after each round.
    pub fn has_round_state(&self) -> bool {
        self.injector.is_some() || self.compressor.as_ref().is_some_and(|c| c.has_state())
    }
}

/// A source of clients that can be materialized one at a time.
///
/// Contract: `materialize(i)` returns the fleet's client `i`, either
/// rebuilt from scratch or restored from a previous [`reclaim`]. For a
/// client without round-to-round state ([`Client::has_round_state`]) the
/// rebuilt copy must be bitwise the reclaimed one, so providers are free
/// to drop it; stateful clients must round-trip through `reclaim`.
///
/// [`reclaim`]: FleetProvider::reclaim
pub trait FleetProvider {
    /// Total fleet size (clients are indexed `0..len()`).
    fn len(&self) -> usize;

    /// `true` if the fleet is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes fleet client `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    fn materialize(&mut self, index: usize) -> Client;

    /// Returns a client after its round, giving the provider the chance
    /// to persist round-to-round state.
    fn reclaim(&mut self, client: Client);
}

/// The trivial provider: a fully materialized fleet behind the
/// [`FleetProvider`] interface.
///
/// Useful for equivalence tests (streaming over a materialized fleet must
/// reproduce [`FlSession`](crate::FlSession) bitwise) and for small fleets
/// driven through streaming-only call sites. Clients are stored in place;
/// `materialize` clones and `reclaim` writes back, so stateful clients
/// (injectors, compressor residuals) persist exactly as they would in a
/// `Vec<Client>` fleet.
pub struct MaterializedFleet {
    clients: Vec<Client>,
}

impl MaterializedFleet {
    /// Wraps a fleet. Clients must sit at their own index (`clients[i].id
    /// == i`), which is how every fleet constructor builds them.
    ///
    /// # Panics
    ///
    /// Panics if some client's `id` differs from its position.
    pub fn new(clients: Vec<Client>) -> Self {
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(
                c.id, i,
                "MaterializedFleet: client {} sits at slot {i}",
                c.id
            );
        }
        Self { clients }
    }

    /// The underlying fleet.
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Mutable fleet access (e.g. to compromise a client between rounds).
    pub fn clients_mut(&mut self) -> &mut [Client] {
        &mut self.clients
    }
}

impl FleetProvider for MaterializedFleet {
    fn len(&self) -> usize {
        self.clients.len()
    }

    fn materialize(&mut self, index: usize) -> Client {
        self.clients[index].clone()
    }

    fn reclaim(&mut self, client: Client) {
        let slot = client.id;
        self.clients[slot] = client;
    }
}

/// Builder for [`StreamingFlSession`].
pub struct StreamingSessionBuilder {
    framework: Box<dyn Framework>,
    provider: Box<dyn FleetProvider>,
    sampler: CohortSampler,
    publisher: Option<Box<dyn ModelPublisher>>,
}

impl StreamingSessionBuilder {
    /// Sets the cohort sampler (default: full participation, no churn).
    /// Full participation over a streaming fleet still materializes the
    /// whole cohort — pick a bounded strategy to bound memory.
    pub fn sampler(mut self, sampler: CohortSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Attaches a [`ModelPublisher`] observing every round's aggregated
    /// global model (default: none).
    pub fn publisher(mut self, publisher: Box<dyn ModelPublisher>) -> Self {
        self.publisher = Some(publisher);
        self
    }

    /// Finalizes the session.
    ///
    /// # Panics
    ///
    /// Panics if the sampler is not usable over the provider's fleet size
    /// (same validation as [`FlSession`](crate::FlSession)).
    pub fn build(self) -> StreamingFlSession {
        if let Err(problem) = self.sampler.validate_for_fleet(self.provider.len()) {
            panic!("StreamingFlSession: {problem}");
        }
        StreamingFlSession {
            framework: self.framework,
            provider: self.provider,
            sampler: self.sampler,
            publisher: self.publisher,
            history: Vec::new(),
        }
    }
}

/// A federated session whose peak memory is bounded by cohort size, not
/// fleet size.
///
/// Each round: draw the plan over the *fleet*, materialize only the
/// cohort, run the framework over the cohort slice under a slot-remapped
/// plan (availabilities preserved), then hand every client back to the
/// provider. See the module docs for the determinism argument.
pub struct StreamingFlSession {
    framework: Box<dyn Framework>,
    provider: Box<dyn FleetProvider>,
    sampler: CohortSampler,
    publisher: Option<Box<dyn ModelPublisher>>,
    history: Vec<RoundReport>,
}

impl StreamingFlSession {
    /// Starts building a session around a (typically pretrained)
    /// framework and a fleet provider.
    pub fn builder(
        framework: Box<dyn Framework>,
        provider: Box<dyn FleetProvider>,
    ) -> StreamingSessionBuilder {
        StreamingSessionBuilder {
            framework,
            provider,
            sampler: CohortSampler::full(),
            publisher: None,
        }
    }

    /// Executes the next round: plan over the fleet, materialize the
    /// cohort, run, reclaim, record.
    pub fn next_round(&mut self) -> &RoundReport {
        let plan = self.sampler.plan(self.history.len(), self.provider.len());
        // Plans are sorted by fleet index on construction, so the cohort
        // slice is in fleet order — the same order a materialized fleet
        // presents its active clients in.
        let mut cohort: Vec<Client> = plan
            .cohort()
            .iter()
            .map(|&(i, _)| self.provider.materialize(i))
            .collect();
        crate::metrics::fl_metrics().on_streaming_materialized(cohort.len() as i64);
        let slot_plan = RoundPlan::new(
            plan.cohort()
                .iter()
                .enumerate()
                .map(|(slot, &(_, availability))| (slot, availability))
                .collect(),
        );
        let report = self.framework.run_round(&mut cohort, &slot_plan);
        let reclaimed = cohort.len() as i64;
        for client in cohort {
            self.provider.reclaim(client);
        }
        crate::metrics::fl_metrics().on_streaming_materialized(-reclaimed);
        if let Some(publisher) = &mut self.publisher {
            publisher.publish_round(&report, &self.framework.global_params());
        }
        self.history.push(report);
        self.history.last().expect("just pushed")
    }

    /// Runs `n` more rounds and returns their reports.
    pub fn run(&mut self, n: usize) -> &[RoundReport] {
        let start = self.history.len();
        for _ in 0..n {
            self.next_round();
        }
        &self.history[start..]
    }

    /// Rounds executed by this session.
    pub fn rounds_run(&self) -> usize {
        self.history.len()
    }

    /// Every report so far, in round order.
    pub fn reports(&self) -> &[RoundReport] {
        &self.history
    }

    /// The framework under the session.
    pub fn framework(&self) -> &dyn Framework {
        self.framework.as_ref()
    }

    /// Mutable framework access.
    pub fn framework_mut(&mut self) -> &mut dyn Framework {
        self.framework.as_mut()
    }

    /// The fleet provider.
    pub fn provider(&self) -> &dyn FleetProvider {
        self.provider.as_ref()
    }

    /// Mutable provider access.
    pub fn provider_mut(&mut self) -> &mut dyn FleetProvider {
        self.provider.as_mut()
    }

    /// Pooled attacker-rejection rate over every round run so far.
    pub fn attacker_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.history.iter(), RoundReport::attacker_rejection_rate)
    }

    /// Pooled honest-rejection rate over every round run so far.
    pub fn honest_rejection_rate(&self) -> Option<f32> {
        pooled_rate(self.history.iter(), RoundReport::honest_rejection_rate)
    }

    /// Dismantles the session into framework, provider and history.
    pub fn into_parts(self) -> (Box<dyn Framework>, Box<dyn FleetProvider>, Vec<RoundReport>) {
        (self.framework, self.provider, self.history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::delta::{DeltaCompressor, DeltaSpec};
    use crate::server::{SequentialFlServer, ServerConfig};
    use crate::session::FlSession;
    use safeloc_attacks::{Attack, PoisonInjector};
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    fn dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(4), &DatasetConfig::tiny(), 5)
    }

    fn pretrained(data: &BuildingDataset) -> SequentialFlServer {
        let mut s = SequentialFlServer::new(
            &[data.building.num_aps(), 24, data.building.num_rps()],
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny(),
        );
        s.pretrain(&data.server_train);
        s
    }

    fn fleet(data: &BuildingDataset) -> Vec<Client> {
        let mut clients = Client::from_dataset(data, 0);
        // One stateful attacker and one compressing client, to exercise
        // the reclaim path for both kinds of round-to-round state.
        clients[1].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 3));
        clients[2].compressor = Some(DeltaCompressor::new(DeltaSpec::TopK { fraction: 0.1 }));
        clients
    }

    #[test]
    fn single_from_dataset_matches_the_fleet_constructor() {
        let data = dataset();
        let fleet = Client::from_dataset(&data, 42);
        for (i, c) in fleet.iter().enumerate() {
            let solo = Client::single_from_dataset(&data, 42, i);
            assert_eq!(solo.id, c.id);
            assert_eq!(solo.seed, c.seed);
            assert_eq!(solo.device_name, c.device_name);
            assert_eq!(solo.local, c.local);
        }
    }

    #[test]
    fn streaming_matches_materialized_session_bitwise_under_churn() {
        let data = dataset();
        let sampler = || {
            CohortSampler::uniform(3, 9)
                .with_dropout(0.2)
                .with_straggle(0.2)
        };

        let mut dense = FlSession::builder(Box::new(pretrained(&data)))
            .clients(fleet(&data))
            .sampler(sampler())
            .build();
        dense.run(4);

        let provider = MaterializedFleet::new(fleet(&data));
        let mut streaming =
            StreamingFlSession::builder(Box::new(pretrained(&data)), Box::new(provider))
                .sampler(sampler())
                .build();
        streaming.run(4);

        assert_eq!(
            streaming.framework().global_params(),
            dense.framework().global_params(),
            "streaming cohorts diverged from the materialized fleet"
        );
        for (s, d) in streaming.reports().iter().zip(dense.reports()) {
            assert_eq!(s.clients, d.clients, "per-round outcomes diverged");
        }
    }

    #[test]
    fn streaming_reports_true_fleet_ids_not_cohort_slots() {
        let data = dataset();
        let provider = MaterializedFleet::new(fleet(&data));
        let n = provider.len();
        let mut session =
            StreamingFlSession::builder(Box::new(pretrained(&data)), Box::new(provider))
                .sampler(CohortSampler::uniform(2, 7))
                .build();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let report = session.next_round();
            assert_eq!(report.clients.len(), 2);
            for c in &report.clients {
                assert!(c.client_id < n);
                seen.insert(c.client_id);
            }
        }
        assert!(
            seen.len() > 2,
            "four uniform(2-of-{n}) rounds should touch more than one cohort's worth of ids: {seen:?}"
        );
    }

    #[test]
    fn reclaim_persists_compressor_residuals() {
        let data = dataset();
        let provider = MaterializedFleet::new(fleet(&data));
        let mut session =
            StreamingFlSession::builder(Box::new(pretrained(&data)), Box::new(provider)).build();
        session.run(1);
        // Downcast-free check: materialize the compressing client again
        // and confirm its residual survived the round.
        let c = session.provider_mut().materialize(2);
        assert!(
            c.compressor.as_ref().unwrap().has_state(),
            "error-feedback residual was lost on reclaim"
        );
        assert!(c.has_round_state());
        session.provider_mut().reclaim(c);
    }

    #[test]
    #[should_panic(expected = "one weight per client")]
    fn sampler_validation_runs_at_build() {
        let data = dataset();
        let provider = MaterializedFleet::new(fleet(&data));
        let n = provider.len();
        let _ = StreamingFlSession::builder(Box::new(pretrained(&data)), Box::new(provider))
            .sampler(CohortSampler::weighted(2, vec![1.0; n - 1], 5))
            .build();
    }

    #[test]
    #[should_panic(expected = "sits at slot")]
    fn materialized_fleet_rejects_misplaced_clients() {
        let data = dataset();
        let mut clients = Client::from_dataset(&data, 0);
        clients.swap_remove(0);
        let _ = MaterializedFleet::new(clients);
    }
}
