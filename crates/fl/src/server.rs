//! A complete FL server around a `Sequential` DNN global model.
//!
//! Every baseline framework in the paper is this server with a different
//! layer stack and aggregation rule; only SAFELOC replaces the model type
//! (fused network) and the aggregation (saliency map).

use crate::aggregate::Aggregator;
use crate::client::{train_sequential_lm, Client, LocalTrainConfig};
use crate::framework::Framework;
use crate::report::{RoundReport, RoundTimer};
use crate::round::RoundPlan;
use crate::update::ClientUpdate;
use rayon::prelude::*;
use safeloc_dataset::FingerprintSet;
use safeloc_nn::{Activation, Adam, HasParams, Matrix, NamedParams, Sequential, TrainConfig};

/// Gathers mutable references to the plan's participating clients, in
/// fleet order — the shape the parallel trainers fan out over. Shared by
/// every engine (`SequentialFlServer`, ONLAD, SAFELOC).
pub fn active_clients<'a>(clients: &'a mut [Client], plan: &RoundPlan) -> Vec<&'a mut Client> {
    let mut mask = vec![false; clients.len()];
    for i in plan.active_indices() {
        if i < clients.len() {
            mask[i] = true;
        }
    }
    clients
        .iter_mut()
        .zip(mask)
        .filter(|(_, active)| *active)
        .map(|(c, _)| c)
        .collect()
}

/// Server-side configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Pretraining epochs (paper: 700).
    pub pretrain_epochs: usize,
    /// Pretraining learning rate (paper: 1e-3).
    pub pretrain_lr: f32,
    /// Pretraining batch size.
    pub batch_size: usize,
    /// Client-side protocol.
    pub local: LocalTrainConfig,
    /// Master seed.
    pub seed: u64,
}

impl ServerConfig {
    /// The paper's configuration (700 epochs @ 1e-3; clients 5 @ 1e-4).
    pub fn paper(seed: u64) -> Self {
        Self {
            pretrain_epochs: 700,
            pretrain_lr: 1e-3,
            batch_size: 32,
            local: LocalTrainConfig::paper(),
            seed,
        }
    }

    /// Scaled-down configuration that still trains to convergence on the
    /// synthetic data — the default for benches. The client learning rate is
    /// raised to 3e-3 so that a few default-scale rounds produce the same LM
    /// drift as the paper's long-running deployment at 1e-4 (see
    /// `DESIGN.md` §5).
    pub fn default_scale(seed: u64) -> Self {
        Self {
            pretrain_epochs: 120,
            pretrain_lr: 1e-3,
            batch_size: 32,
            local: LocalTrainConfig {
                learning_rate: 3e-3,
                ..LocalTrainConfig::paper()
            },
            seed,
        }
    }

    /// Tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            pretrain_epochs: 100,
            pretrain_lr: 1e-2,
            batch_size: 16,
            local: LocalTrainConfig {
                epochs: 3,
                learning_rate: 1e-3,
                batch_size: 8,
                ..LocalTrainConfig::default()
            },
            seed: 0,
        }
    }
}

/// FL server whose global model is a [`Sequential`] classifier.
#[derive(Clone)]
pub struct SequentialFlServer {
    name: &'static str,
    gm: Sequential,
    aggregator: Box<dyn Aggregator>,
    cfg: ServerConfig,
    rounds_run: usize,
}

impl std::fmt::Debug for SequentialFlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialFlServer")
            .field("name", &self.name)
            .field("aggregator", &self.aggregator.name())
            .field("params", &self.gm.num_params())
            .field("rounds_run", &self.rounds_run)
            .finish()
    }
}

impl SequentialFlServer {
    /// Creates a server with an MLP of layer widths `dims` and the given
    /// aggregation rule.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2`.
    pub fn new(dims: &[usize], aggregator: Box<dyn Aggregator>, cfg: ServerConfig) -> Self {
        Self {
            name: "SequentialFL",
            gm: Sequential::mlp(dims, Activation::Relu, cfg.seed),
            aggregator,
            cfg,
            rounds_run: 0,
        }
    }

    /// Same as [`SequentialFlServer::new`] with an explicit display name
    /// (used by the named baselines).
    pub fn named(
        name: &'static str,
        dims: &[usize],
        aggregator: Box<dyn Aggregator>,
        cfg: ServerConfig,
    ) -> Self {
        let mut s = Self::new(dims, aggregator, cfg);
        s.name = name;
        s
    }

    /// The current global model.
    pub fn global_model(&self) -> &Sequential {
        &self.gm
    }

    /// Number of federated rounds run so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// The configured aggregation rule's name (a pipeline's composition
    /// label).
    pub fn aggregator_name(&self) -> &str {
        self.aggregator.name()
    }

    /// Replaces the server-side defense, keeping the trained global model —
    /// how the scenario-suite engine swaps composed
    /// [`DefensePipeline`](crate::defense::DefensePipeline)s into a
    /// pretrained framework.
    pub fn set_aggregator(&mut self, aggregator: Box<dyn Aggregator>) {
        self.aggregator = aggregator;
    }

    /// Collects updates from the plan's participating clients (shared with
    /// tests).
    ///
    /// Clients are independent by construction — each trains its own clone
    /// of the distributed GM on its own local data — so the participating
    /// cohort trains in parallel. Results come back in fleet order and
    /// every client draws from its own seed stream, so the round is
    /// bitwise-identical for any thread count (asserted by
    /// `tests/parallel_determinism.rs`), and cohort membership never
    /// perturbs another client's training stream.
    fn collect_updates(&mut self, clients: &mut [Client], plan: &RoundPlan) -> Vec<ClientUpdate> {
        let n_classes = self.gm.out_dim();
        let round_salt = (self.rounds_run as u64 + 1) << 16;
        let gm = &self.gm;
        let local = &self.cfg.local;
        // One snapshot shared across the fleet (the seed re-snapshotted the
        // full GM once per client).
        let gm_snapshot = gm.snapshot();
        active_clients(clients, plan)
            .into_par_iter()
            .map(|c| {
                let set = c.prepare_round_data(gm, n_classes, local);
                let params = train_sequential_lm(gm, &set, local, c.seed ^ round_salt);
                let params = c.finalize_params(&gm_snapshot, params);
                c.build_update(&gm_snapshot, params, set.len())
            })
            .collect()
    }
}

impl Framework for SequentialFlServer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        let mut opt = Adam::new(self.cfg.pretrain_lr);
        self.gm.fit_classifier(
            &train.x,
            &train.labels,
            &mut opt,
            &TrainConfig::new(self.cfg.pretrain_epochs, self.cfg.batch_size, self.cfg.seed),
        );
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        let timer = RoundTimer::start();
        let updates = self.collect_updates(clients, plan);
        let timer = timer.split();
        let outcome = self.aggregator.aggregate(&self.gm.snapshot(), &updates);
        let stages = self.aggregator.take_stage_telemetry();
        self.gm
            .load(&outcome.params)
            .expect("aggregator preserves architecture");
        let report = timer.finish(
            self.rounds_run,
            self.name,
            clients,
            plan,
            &updates,
            &outcome,
            stages,
        );
        self.rounds_run += 1;
        report
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.gm.predict(x)
    }

    fn num_params(&self) -> usize {
        self.gm.num_params()
    }

    fn global_params(&self) -> NamedParams {
        self.gm.snapshot()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(&mut self, aggregator: Box<dyn Aggregator>) -> Result<(), String> {
        SequentialFlServer::set_aggregator(self, aggregator);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::DefensePipeline;
    use crate::report::ClientOutcome;
    use crate::round::Availability;
    use safeloc_attacks::{Attack, PoisonInjector};
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    fn fedavg() -> Box<dyn Aggregator> {
        Box::new(DefensePipeline::fedavg())
    }

    fn run_full_rounds(s: &mut SequentialFlServer, clients: &mut [Client], n: usize) {
        for _ in 0..n {
            s.run_round(clients, &RoundPlan::full(clients.len()));
        }
    }

    fn dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(4), &DatasetConfig::tiny(), 4)
    }

    fn server(data: &BuildingDataset, agg: Box<dyn Aggregator>) -> SequentialFlServer {
        SequentialFlServer::new(
            &[data.building.num_aps(), 24, data.building.num_rps()],
            agg,
            ServerConfig::tiny(),
        )
    }

    #[test]
    fn pretraining_reaches_high_train_accuracy() {
        let data = dataset();
        let mut s = server(&data, fedavg());
        s.pretrain(&data.server_train);
        let acc = s.accuracy(&data.server_train.x, &data.server_train.labels);
        assert!(acc > 0.8, "pretrain accuracy {acc}");
    }

    #[test]
    fn clean_rounds_do_not_destroy_the_model() {
        let data = dataset();
        let mut s = server(&data, fedavg());
        s.pretrain(&data.server_train);
        let before = s.accuracy(&data.server_train.x, &data.server_train.labels);
        let mut clients = Client::from_dataset(&data, 0);
        run_full_rounds(&mut s, &mut clients, 3);
        let after = s.accuracy(&data.server_train.x, &data.server_train.labels);
        assert_eq!(s.rounds_run(), 3);
        assert!(
            after > before - 0.3,
            "clean FL rounds collapsed accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn poisoned_fedavg_degrades_more_than_krum() {
        let data = dataset();
        let n_rps = data.building.num_rps();
        let eval = &data.client_test[0];

        let run = |agg: Box<dyn Aggregator>| -> f32 {
            let mut s = server(&data, agg);
            s.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            // Make the last client malicious with full label flipping.
            let last = clients.len() - 1;
            clients[last].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 99));
            run_full_rounds(&mut s, &mut clients, 4);
            s.accuracy(&eval.x, &eval.labels)
        };

        let fedavg_acc = run(fedavg());
        let krum_acc = run(Box::new(DefensePipeline::krum(1)));
        // Krum should be no worse than FedAvg under poisoning (usually much
        // better); allow slack for the tiny dataset.
        assert!(
            krum_acc >= fedavg_acc - 0.15,
            "krum {krum_acc} much worse than fedavg {fedavg_acc} under attack"
        );
        let _ = n_rps;
    }

    #[test]
    fn round_is_deterministic() {
        let data = dataset();
        let run = || {
            let mut s = server(&data, fedavg());
            s.pretrain(&data.server_train);
            let mut clients = Client::from_dataset(&data, 0);
            let plan = RoundPlan::full(clients.len());
            s.run_round(&mut clients, &plan);
            s.global_model().snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn debug_is_informative() {
        let data = dataset();
        let s = server(&data, fedavg());
        let dbg = format!("{s:?}");
        assert!(dbg.contains("FedAvg"));
    }

    #[test]
    fn full_round_reports_every_client_trained() {
        let data = dataset();
        let mut s = server(&data, fedavg());
        s.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::full(clients.len());
        let report = s.run_round(&mut clients, &plan);
        assert_eq!(report.round, 0);
        assert_eq!(report.clients.len(), clients.len());
        assert_eq!(report.accepted(), clients.len());
        assert_eq!(report.rejected() + report.dropped() + report.straggled(), 0);
        assert!(report.train_ms >= 0.0 && report.aggregate_ms >= 0.0);
        assert!(report
            .clients
            .iter()
            .all(|c| matches!(c.outcome, ClientOutcome::Trained { .. }) && c.samples > 0));
    }

    #[test]
    fn partial_plan_trains_only_the_participants() {
        let data = dataset();
        let mut s = server(&data, fedavg());
        s.pretrain(&data.server_train);
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::new(vec![
            (0, Availability::Participates),
            (1, Availability::DropsOut),
            (2, Availability::Straggles),
        ]);
        let report = s.run_round(&mut clients, &plan);
        assert_eq!(report.clients.len(), 3);
        assert_eq!(report.accepted(), 1);
        assert_eq!(report.dropped(), 1);
        assert_eq!(report.straggled(), 1);
        assert_eq!(report.clients[1].outcome, ClientOutcome::DroppedOut);
        assert_eq!(report.clients[1].samples, 0);
        assert_eq!(s.rounds_run(), 1);
    }

    #[test]
    fn all_dropout_round_keeps_the_global_model() {
        let data = dataset();
        let mut s = server(&data, fedavg());
        s.pretrain(&data.server_train);
        let before = s.global_model().snapshot();
        let mut clients = Client::from_dataset(&data, 0);
        let plan = RoundPlan::new(
            (0..clients.len())
                .map(|i| (i, Availability::DropsOut))
                .collect(),
        );
        let report = s.run_round(&mut clients, &plan);
        assert_eq!(report.participants(), 0);
        assert_eq!(s.global_model().snapshot(), before);
    }
}
