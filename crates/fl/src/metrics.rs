//! Federated-round telemetry: per-stage rejection and wall-time series,
//! round-level wall/cohort metrics, delta-compression byte counters and
//! the streaming-fleet materialization gauge.
//!
//! Everything records into the process-global telemetry registry as a
//! pure side channel — nothing here feeds back into training,
//! aggregation or cohort planning, so bitwise round trajectories are
//! unchanged whether telemetry is enabled or not.
//!
//! Stage series are registered lazily per stage name (the pipeline's
//! stage set is configuration, not code) and cached behind an `RwLock`;
//! the steady-state path is a read-lock plus relaxed atomic ops.
//!
//! Metric catalog (all names prefixed `fl_`):
//!
//! | series | kind | labels |
//! |---|---|---|
//! | `fl_rounds_total` | counter | — |
//! | `fl_round_wall_ms` | histogram | — |
//! | `fl_round_train_ms` | histogram | — |
//! | `fl_round_aggregate_ms` | histogram | — |
//! | `fl_cohort_size` | histogram | — |
//! | `fl_stage_rejections_total` | counter | `stage` |
//! | `fl_stage_wall_us` | histogram | `stage` |
//! | `fl_delta_raw_bytes_total` | counter | — |
//! | `fl_delta_wire_bytes_total` | counter | — |
//! | `fl_streaming_materialized` | gauge | — |

use crate::report::StageTelemetry;
use safeloc_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Cached per-stage handles.
struct StageHandles {
    rejections: Arc<Counter>,
    wall_us: Arc<Histogram>,
}

/// Telemetry handles for the federated engine, shared process-wide.
pub struct FlMetrics {
    registry: Arc<Registry>,
    rounds: Arc<Counter>,
    round_wall_ms: Arc<Histogram>,
    round_train_ms: Arc<Histogram>,
    round_aggregate_ms: Arc<Histogram>,
    cohort_size: Arc<Histogram>,
    delta_raw_bytes: Arc<Counter>,
    delta_wire_bytes: Arc<Counter>,
    streaming_materialized: Arc<Gauge>,
    stages: RwLock<HashMap<String, StageHandles>>,
}

impl FlMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        Self {
            rounds: registry.counter("fl_rounds_total", &[]),
            round_wall_ms: registry.histogram("fl_round_wall_ms", &[]),
            round_train_ms: registry.histogram("fl_round_train_ms", &[]),
            round_aggregate_ms: registry.histogram("fl_round_aggregate_ms", &[]),
            cohort_size: registry.histogram("fl_cohort_size", &[]),
            delta_raw_bytes: registry.counter("fl_delta_raw_bytes_total", &[]),
            delta_wire_bytes: registry.counter("fl_delta_wire_bytes_total", &[]),
            streaming_materialized: registry.gauge("fl_streaming_materialized", &[]),
            stages: RwLock::new(HashMap::new()),
            registry,
        }
    }

    /// Records one finished round: wall-clock split and cohort size.
    pub fn on_round(&self, train_ms: f64, aggregate_ms: f64, cohort_size: usize) {
        self.rounds.inc();
        self.round_wall_ms.record_f64(train_ms + aggregate_ms);
        self.round_train_ms.record_f64(train_ms);
        self.round_aggregate_ms.record_f64(aggregate_ms);
        self.cohort_size.record(cohort_size as u64);
    }

    /// Records one defense stage's footprint. Called by the pipeline for
    /// every stage of every aggregation, so the series exist even for
    /// engines that never drain
    /// [`take_stage_telemetry`](crate::Aggregator::take_stage_telemetry).
    pub fn on_stage(&self, stage: &StageTelemetry) {
        {
            let stages = self.stages.read().expect("fl metrics lock poisoned");
            if let Some(handles) = stages.get(&stage.stage) {
                handles.rejections.add(stage.rejections as u64);
                handles.wall_us.record_f64(stage.wall_ms * 1e3);
                return;
            }
        }
        let mut stages = self.stages.write().expect("fl metrics lock poisoned");
        let handles = stages.entry(stage.stage.clone()).or_insert_with(|| {
            let labels: &[(&str, &str)] = &[("stage", &stage.stage)];
            StageHandles {
                rejections: self.registry.counter("fl_stage_rejections_total", labels),
                wall_us: self.registry.histogram("fl_stage_wall_us", labels),
            }
        });
        handles.rejections.add(stage.rejections as u64);
        handles.wall_us.record_f64(stage.wall_ms * 1e3);
    }

    /// Records one delta compression: the dense bytes the update would
    /// have cost on the wire versus what its encoding actually costs.
    pub fn on_delta(&self, raw_bytes: usize, wire_bytes: usize) {
        self.delta_raw_bytes.add(raw_bytes as u64);
        self.delta_wire_bytes.add(wire_bytes as u64);
    }

    /// Tracks how many fleet members a streaming session currently holds
    /// materialized (`delta` of +n on materialization, −n on reclaim).
    pub fn on_streaming_materialized(&self, delta: i64) {
        self.streaming_materialized.add(delta);
    }
}

/// The process-wide federated-engine metrics, recording into
/// [`safeloc_telemetry::global`].
pub fn fl_metrics() -> &'static FlMetrics {
    static METRICS: OnceLock<FlMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FlMetrics::new(safeloc_telemetry::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_round_series_accumulate() {
        let metrics = FlMetrics::new(Arc::new(Registry::new()));
        metrics.on_round(10.0, 2.0, 8);
        metrics.on_round(8.0, 1.0, 6);
        metrics.on_stage(&StageTelemetry {
            stage: "norm-clip".into(),
            rejections: 0,
            wall_ms: 0.5,
        });
        metrics.on_stage(&StageTelemetry {
            stage: "krum".into(),
            rejections: 3,
            wall_ms: 1.5,
        });
        metrics.on_stage(&StageTelemetry {
            stage: "krum".into(),
            rejections: 2,
            wall_ms: 1.0,
        });
        metrics.on_delta(4000, 320);
        metrics.on_streaming_materialized(8);
        metrics.on_streaming_materialized(-8);

        let snap = metrics.registry.snapshot();
        let counter = |name: &str, labels: &[(&str, &str)]| {
            snap.counters
                .iter()
                .find(|c| {
                    c.name == name
                        && labels
                            .iter()
                            .all(|(k, v)| c.labels.contains(&((*k).into(), (*v).into())))
                })
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(counter("fl_rounds_total", &[]), 2);
        assert_eq!(
            counter("fl_stage_rejections_total", &[("stage", "krum")]),
            5
        );
        assert_eq!(counter("fl_delta_raw_bytes_total", &[]), 4000);
        assert_eq!(counter("fl_delta_wire_bytes_total", &[]), 320);
        let wall = snap
            .histograms
            .iter()
            .find(|h| h.name == "fl_round_wall_ms")
            .unwrap();
        assert_eq!(wall.count, 2);
        assert!((wall.sum - 21.0).abs() < 1e-9);
        let materialized = snap
            .gauges
            .iter()
            .find(|g| g.name == "fl_streaming_materialized")
            .unwrap();
        assert_eq!(materialized.value, 0, "every materialization reclaimed");
    }
}
