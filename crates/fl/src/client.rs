//! FL clients: local data, optional poisoning, and the client-side
//! training protocol.

use crate::delta::DeltaCompressor;
use crate::update::ClientUpdate;
use safeloc_attacks::{GradientSource, PoisonInjector};
use safeloc_dataset::{BuildingDataset, FingerprintSet};
use safeloc_nn::{Adam, HasParams, Matrix, NamedParams, Sequential, TrainConfig};
use serde::{Deserialize, Serialize};

/// How clients label their local RSS before retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelingMode {
    /// Paper-literal §III (default): clients label their RSS with the GM's
    /// own predictions before retraining. This is also what arms the
    /// attacks — a backdoor perturbation makes those predictions wrong, so
    /// the poisoned LM trains toward wrong locations.
    SelfTrain,
    /// Clients know the RP they stood on when collecting (survey-style FL,
    /// as in FEDHIL). Kept as an ablation mode.
    Surveyed,
}

/// Client-side training protocol.
///
/// The paper uses 5 epochs at a reduced learning rate of `1e-4` for
/// lightweight on-device training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainConfig {
    /// Local epochs (paper: 5).
    pub epochs: usize,
    /// Local learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// Mini-batch size (0 = full batch).
    pub batch_size: usize,
    /// Labeling mode.
    pub labeling: LabelingMode,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            learning_rate: 1e-4,
            batch_size: 16,
            labeling: LabelingMode::SelfTrain,
        }
    }
}

impl LocalTrainConfig {
    /// The paper's client configuration.
    pub fn paper() -> Self {
        Self::default()
    }
}

/// A federated client: one phone with its local fingerprints.
///
/// A `Some` injector marks the client as malicious; its local data is
/// poisoned before every local training pass, as in §III of the paper.
#[derive(Debug, Clone)]
pub struct Client {
    /// Client identifier (index into the fleet).
    pub id: usize,
    /// Device name, for reports.
    pub device_name: String,
    /// Local fingerprints with surveyed labels.
    pub local: FingerprintSet,
    /// Poisoner, if the client is compromised.
    pub injector: Option<PoisonInjector>,
    /// Per-client seed stream for local training.
    pub seed: u64,
    /// Delta compressor with its error-feedback residual, if the client
    /// uploads compressed updates. `None` keeps the exact dense path.
    pub compressor: Option<DeltaCompressor>,
}

impl Client {
    /// Builds the client fleet of a [`BuildingDataset`], all clean.
    pub fn from_dataset(data: &BuildingDataset, seed: u64) -> Vec<Client> {
        (0..data.client_local.len())
            .map(|i| Client::single_from_dataset(data, seed, i))
            .collect()
    }

    /// Builds one client of the fleet `from_dataset(data, seed)` would
    /// build, without materializing the others. Streaming fleets use this
    /// to bound peak memory by cohort size.
    pub fn single_from_dataset(data: &BuildingDataset, seed: u64, i: usize) -> Client {
        Client {
            id: i,
            device_name: data.devices[i].name.clone(),
            local: data.client_local[i].clone(),
            injector: None,
            seed: seed ^ ((i as u64 + 1) << 32),
            compressor: None,
        }
    }

    /// `true` if the client carries a poison injector.
    pub fn is_malicious(&self) -> bool {
        self.injector.is_some()
    }

    /// The RSS rows entering the client pipeline this round.
    ///
    /// A backdoor attacker manipulates the sensor feed *before* any
    /// framework logic runs (paper Fig. 2): the RSS is perturbed using
    /// gradients of the distributed model `gm` against `base_labels`.
    /// Honest clients and label-flipping attackers return the raw RSS.
    pub fn round_rss(
        &mut self,
        gm: &dyn GradientSource,
        base_labels: &[usize],
        n_classes: usize,
    ) -> Matrix {
        match &mut self.injector {
            Some(inj) if inj.attack().kind().is_backdoor() => {
                let set = FingerprintSet::new(self.local.x.clone(), base_labels.to_vec());
                inj.poison_set(&set, gm, n_classes).x
            }
            _ => self.local.x.clone(),
        }
    }

    /// The final training labels for this round.
    ///
    /// A label-flipping attacker flips the labels *after* the framework's
    /// own labeling/de-noising steps — "the attacker flips the predicted
    /// location coordinates before updating the LM" (§IV) — so no
    /// client-side defense can see the flip.
    pub fn round_labels(&mut self, labels: Vec<usize>, n_classes: usize) -> Vec<usize> {
        match &mut self.injector {
            Some(inj) => inj.poison_labels(&labels, n_classes),
            None => labels,
        }
    }

    /// The update this client actually uploads: honest clients return the
    /// trained LM as-is; a malicious client amplifies its delta from the GM
    /// by its injector's boost factor (model replacement — see
    /// [`PoisonInjector::with_boost`]).
    pub fn finalize_params(&self, gm: &NamedParams, lm: NamedParams) -> NamedParams {
        let boost = self.injector.as_ref().map(|i| i.boost()).unwrap_or(1.0);
        if (boost - 1.0).abs() < 1e-9 {
            return lm;
        }
        let mut out = gm.clone();
        out.axpy(boost, &lm.delta(gm));
        out
    }

    /// Packages finalized LM weights into the [`ClientUpdate`] this client
    /// uploads. Without a compressor this is exactly [`ClientUpdate::new`]
    /// (the bitwise-pinned dense path). With one, the delta from the GM is
    /// compressed under error feedback and the update's parameters are
    /// re-materialized as `GM + decode(repr)`, so the server and every
    /// defense screen exactly what crossed the wire.
    pub fn build_update(
        &mut self,
        gm: &NamedParams,
        params: NamedParams,
        num_samples: usize,
    ) -> ClientUpdate {
        let Some(compressor) = &mut self.compressor else {
            return ClientUpdate::new(self.id, params, num_samples);
        };
        let flat = params.delta(gm).flatten();
        let (repr, decoded) = compressor.compress(flat.as_slice());
        let mut out = gm.clone();
        out.add_flat(&decoded);
        ClientUpdate::with_repr(self.id, out, num_samples, repr)
    }

    /// Labels for the client's raw RSS under `cfg.labeling`, before any
    /// attack is applied.
    pub fn base_labels(&self, gm: &impl PredictLabels, cfg: &LocalTrainConfig) -> Vec<usize> {
        match cfg.labeling {
            LabelingMode::Surveyed => self.local.labels.clone(),
            LabelingMode::SelfTrain => gm.predict_labels(&self.local.x),
        }
    }

    /// The complete basic client protocol (no de-noising), used by every
    /// baseline framework:
    ///
    /// 1. label the raw RSS (`base_labels`),
    /// 2. a backdoor attacker perturbs the RSS feed (`round_rss`),
    /// 3. re-label the pipeline input per the protocol (under self-training
    ///    the perturbed RSS now yields *wrong* predictions — the backdoor's
    ///    payload),
    /// 4. a label-flipping attacker flips the final labels
    ///    (`round_labels`).
    pub fn prepare_round_data(
        &mut self,
        gm: &(impl GradientSource + PredictLabels),
        n_classes: usize,
        cfg: &LocalTrainConfig,
    ) -> FingerprintSet {
        let base = self.base_labels(gm, cfg);
        let x = self.round_rss(gm, &base, n_classes);
        let labels = match cfg.labeling {
            LabelingMode::Surveyed => self.local.labels.clone(),
            LabelingMode::SelfTrain => gm.predict_labels(&x),
        };
        let labels = self.round_labels(labels, n_classes);
        FingerprintSet::new(x, labels)
    }
}

/// Label prediction, implemented by every global model type so clients can
/// self-label under [`LabelingMode::SelfTrain`].
pub trait PredictLabels {
    /// Predicted RP label per row of `x`.
    fn predict_labels(&self, x: &Matrix) -> Vec<usize>;
}

impl PredictLabels for Sequential {
    fn predict_labels(&self, x: &Matrix) -> Vec<usize> {
        self.predict(x)
    }
}

/// Runs the standard client-side local training for a [`Sequential`] LM:
/// clone the GM, train `cfg.epochs` at `cfg.learning_rate`, return the LM
/// parameters.
pub fn train_sequential_lm(
    gm: &Sequential,
    set: &FingerprintSet,
    cfg: &LocalTrainConfig,
    seed: u64,
) -> NamedParams {
    let mut lm = gm.clone();
    let mut opt = Adam::new(cfg.learning_rate);
    lm.fit_classifier(
        &set.x,
        &set.labels,
        &mut opt,
        &TrainConfig::new(cfg.epochs, cfg.batch_size, seed),
    );
    lm.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_attacks::Attack;
    use safeloc_dataset::{Building, DatasetConfig};
    use safeloc_nn::Activation;

    fn dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(2), &DatasetConfig::tiny(), 5)
    }

    fn gm(data: &BuildingDataset) -> Sequential {
        Sequential::mlp(
            &[data.building.num_aps(), 16, data.building.num_rps()],
            Activation::Relu,
            1,
        )
    }

    #[test]
    fn fleet_construction() {
        let data = dataset();
        let clients = Client::from_dataset(&data, 0);
        assert_eq!(clients.len(), data.num_clients());
        assert!(clients.iter().all(|c| !c.is_malicious()));
        assert_eq!(clients[0].device_name, data.devices[0].name);
        // Distinct seeds per client.
        assert_ne!(clients[0].seed, clients[1].seed);
    }

    #[test]
    fn surveyed_labels_pass_through() {
        let data = dataset();
        let mut clients = Client::from_dataset(&data, 0);
        let model = gm(&data);
        let cfg = LocalTrainConfig {
            labeling: LabelingMode::Surveyed,
            ..Default::default()
        };
        let set = clients[0].prepare_round_data(&model, data.building.num_rps(), &cfg);
        assert_eq!(set.labels, data.client_local[0].labels);
        assert_eq!(set.x, data.client_local[0].x);
    }

    #[test]
    fn self_train_uses_model_predictions() {
        let data = dataset();
        let mut clients = Client::from_dataset(&data, 0);
        let model = gm(&data);
        let set = clients[0].prepare_round_data(
            &model,
            data.building.num_rps(),
            &LocalTrainConfig::default(),
        );
        assert_eq!(set.labels, model.predict(&data.client_local[0].x));
    }

    #[test]
    fn backdoor_attacker_poisons_rss_before_labeling() {
        let data = dataset();
        let mut clients = Client::from_dataset(&data, 0);
        clients[0].injector = Some(PoisonInjector::new(Attack::fgsm(0.4), 3));
        let model = gm(&data);
        let set = clients[0].prepare_round_data(
            &model,
            data.building.num_rps(),
            &LocalTrainConfig::default(),
        );
        // RSS perturbed...
        assert_ne!(set.x, data.client_local[0].x);
        // ...and labels are the GM's predictions on the *poisoned* RSS.
        assert_eq!(set.labels, model.predict(&set.x));
    }

    #[test]
    fn label_flip_applies_after_labeling() {
        let data = dataset();
        let mut clients = Client::from_dataset(&data, 0);
        clients[0].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 3));
        let model = gm(&data);
        let set = clients[0].prepare_round_data(
            &model,
            data.building.num_rps(),
            &LocalTrainConfig::default(),
        );
        assert_eq!(set.x, data.client_local[0].x, "label flip must keep RSS");
        let predicted = model.predict(&set.x);
        let flips = set
            .labels
            .iter()
            .zip(&predicted)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(flips, set.len(), "every predicted label should be flipped");
    }

    #[test]
    fn malicious_client_poisons_data() {
        let data = dataset();
        let mut clients = Client::from_dataset(&data, 0);
        clients[1].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 9));
        assert!(clients[1].is_malicious());
        let model = gm(&data);
        let set = clients[1].prepare_round_data(
            &model,
            data.building.num_rps(),
            &LocalTrainConfig::default(),
        );
        assert_ne!(set.labels, model.predict(&set.x));
    }

    #[test]
    fn local_training_moves_weights_towards_local_data() {
        let data = dataset();
        let model = gm(&data);
        let set = &data.client_local[0];
        let cfg = LocalTrainConfig {
            epochs: 10,
            learning_rate: 1e-3,
            ..Default::default()
        };
        let lm = train_sequential_lm(&model, set, &cfg, 4);
        assert!(lm.l2_distance(&model.snapshot()) > 1e-4, "LM did not move");
        // Loading the LM back gives better local accuracy than the raw GM.
        let mut trained = model.clone();
        trained.load(&lm).unwrap();
        assert!(trained.accuracy(&set.x, &set.labels) >= model.accuracy(&set.x, &set.labels));
    }

    #[test]
    fn local_training_is_deterministic() {
        let data = dataset();
        let model = gm(&data);
        let cfg = LocalTrainConfig::default();
        let a = train_sequential_lm(&model, &data.client_local[0], &cfg, 7);
        let b = train_sequential_lm(&model, &data.client_local[0], &cfg, 7);
        assert_eq!(a, b);
    }
}
