//! Histogram bucket-boundary edge cases: zero, subnormal, negative,
//! infinite and NaN samples must land somewhere sensible — never panic,
//! never lose the count, never poison the sum.

use safeloc_telemetry::{Histogram, HISTOGRAM_BUCKETS};

#[test]
fn zero_and_subnormal_samples_land_in_the_first_bucket() {
    let h = Histogram::new();
    h.record(0);
    h.record_f64(0.0);
    h.record_f64(f64::MIN_POSITIVE / 2.0); // subnormal
    h.record_f64(-3.0); // clamped
    assert_eq!(h.count(), 4);
    assert_eq!(h.bucket_counts()[0], 4);
    assert_eq!(h.overflow_count(), 0);
    assert!(
        h.sum() >= 0.0 && h.sum() < 1e-300,
        "subnormals and clamped negatives sum to ~0, got {}",
        h.sum()
    );
}

#[test]
fn non_finite_samples_hit_the_overflow_bucket_not_a_panic() {
    let h = Histogram::new();
    h.record_f64(f64::INFINITY);
    h.record_f64(f64::NEG_INFINITY);
    h.record_f64(f64::NAN);
    assert_eq!(h.count(), 3);
    assert_eq!(h.overflow_count(), 3);
    assert_eq!(h.sum(), 0.0, "non-finite samples must not poison the sum");
    // A later honest sample still averages cleanly.
    h.record_f64(10.0);
    assert_eq!(h.sum(), 10.0);
    assert!(h.sum().is_finite());
}

#[test]
fn huge_samples_overflow_instead_of_indexing_out_of_bounds() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record((1 << HISTOGRAM_BUCKETS) + 1);
    h.record_f64(1e300);
    h.record_f64(u64::MAX as f64 * 4.0);
    assert_eq!(h.overflow_count(), 4);
    assert_eq!(h.count(), 4);
}

#[test]
fn exact_power_of_two_boundaries_are_inclusive() {
    let h = Histogram::new();
    h.record(1 << 10); // exactly le-1024
    h.record((1 << 10) + 1); // first value of the next bucket
    let buckets = h.bucket_counts();
    assert_eq!(buckets[10], 1);
    assert_eq!(buckets[11], 1);
    // Float samples bucket like their integer ceilings.
    let hf = Histogram::new();
    hf.record_f64(1024.0);
    hf.record_f64(1024.5);
    let buckets = hf.bucket_counts();
    assert_eq!(buckets[10], 1, "1024.0 is exactly le-1024");
    assert_eq!(buckets[11], 1, "1024.5 ceils into le-2048");
}

#[test]
fn last_finite_bucket_boundary() {
    let h = Histogram::new();
    h.record(1 << (HISTOGRAM_BUCKETS - 1)); // exactly the last finite bound
    h.record((1 << (HISTOGRAM_BUCKETS - 1)) + 1);
    let buckets = h.bucket_counts();
    assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
    assert_eq!(h.overflow_count(), 1);
}
