//! Flight-recorder wraparound: the ring keeps exactly the most recent
//! `capacity` spans, in order, and still exports valid chrome-trace JSON
//! after wrapping many times over.

use safeloc_telemetry::FlightRecorder;

static NAMES: [&str; 10] = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"];

#[test]
fn ring_keeps_the_most_recent_capacity_spans() {
    let rec = FlightRecorder::new(4);
    for name in NAMES.iter().take(10) {
        drop(rec.span(name, "wrap"));
    }
    let events = rec.events();
    assert_eq!(events.len(), 4, "capacity bounds retention");
    assert_eq!(rec.recorded(), 10, "but every span was counted");
    let kept: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert_eq!(
        kept,
        vec!["s6", "s7", "s8", "s9"],
        "oldest first, newest last"
    );
    assert!(
        events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
        "retained events stay chronological across the wrap point"
    );
}

#[test]
fn wrapped_ring_exports_valid_chrome_trace_json() {
    let rec = FlightRecorder::new(3);
    for round in 0..7 {
        drop(rec.span(NAMES[round % NAMES.len()], "round"));
    }
    let json = rec.chrome_trace_json();
    // The vendored `serde_json::Value` is not `Deserialize`, so validity is
    // checked by parsing into the full typed event shape instead.
    #[derive(serde::Deserialize)]
    struct ChromeEvent {
        name: String,
        cat: String,
        ph: String,
        ts: u64,
        dur: u64,
        pid: u64,
        tid: u64,
    }
    let events: Vec<ChromeEvent> = serde_json::from_str(&json).expect("valid JSON after wrap");
    assert_eq!(events.len(), 3);
    let mut last_ts = 0;
    for e in &events {
        assert_eq!(e.ph, "X");
        assert_eq!(e.cat, "round");
        assert_eq!(e.pid, 1);
        assert!(!e.name.is_empty());
        assert!(e.tid >= 1);
        assert!(
            e.ts >= last_ts,
            "events stay chronological: {} < {last_ts}",
            e.ts
        );
        last_ts = e.ts;
        let _ = e.dur;
    }
}

#[test]
fn capacity_one_ring_always_holds_the_latest_span() {
    let rec = FlightRecorder::new(1);
    for name in NAMES.iter() {
        drop(rec.span(name, "t"));
    }
    let events = rec.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "s9");
}
