//! Exposition-format round trip: every registered metric must appear in
//! the rendered text, label values must survive escaping, and the text
//! must parse back to the recorded values.

use safeloc_telemetry::{parse_prometheus, render_prometheus, Registry};

fn sample_value(
    samples: &[safeloc_telemetry::PromSample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<f64> {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), &(ek, ev))| k == ek && v == ev)
        })
        .map(|s| s.value)
}

#[test]
fn every_registered_metric_appears_and_parses_back() {
    let registry = Registry::new();
    registry
        .counter(
            "serve_requests_total",
            &[("building", "0"), ("device_class", "HTC U11")],
        )
        .add(41);
    registry
        .gauge("serve_model_version", &[("building", "0")])
        .set(3);
    let h = registry.histogram("serve_latency_ns", &[]);
    h.record(100);
    h.record(5_000);
    h.record(5_000_000);

    let text = render_prometheus(&registry);
    // Every series got a TYPE line of the right kind.
    assert!(text.contains("# TYPE serve_requests_total counter"));
    assert!(text.contains("# TYPE serve_model_version gauge"));
    assert!(text.contains("# TYPE serve_latency_ns histogram"));

    let samples = parse_prometheus(&text).expect("our own exposition parses");
    assert_eq!(
        sample_value(
            &samples,
            "serve_requests_total",
            &[("building", "0"), ("device_class", "HTC U11")]
        ),
        Some(41.0)
    );
    assert_eq!(
        sample_value(&samples, "serve_model_version", &[("building", "0")]),
        Some(3.0)
    );
    assert_eq!(
        sample_value(&samples, "serve_latency_ns_count", &[]),
        Some(3.0)
    );
    assert_eq!(
        sample_value(&samples, "serve_latency_ns_sum", &[]),
        Some(5_005_100.0)
    );
    // The +Inf bucket carries the total count, and cumulative buckets
    // never decrease.
    assert_eq!(
        sample_value(&samples, "serve_latency_ns_bucket", &[("le", "+Inf")]),
        Some(3.0)
    );
    let mut bucket_values: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == "serve_latency_ns_bucket")
        .map(|s| {
            let le = &s.labels[0].1;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap()
            };
            (bound, s.value)
        })
        .collect();
    bucket_values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert!(
        bucket_values.windows(2).all(|w| w[0].1 <= w[1].1),
        "cumulative buckets must be monotone: {bucket_values:?}"
    );
}

#[test]
fn hostile_label_values_survive_the_round_trip() {
    let registry = Registry::new();
    let hostile = "Pixel \"9\"\\w\nnewline";
    registry
        .counter("wire_frames_total", &[("device", hostile)])
        .inc();
    let text = render_prometheus(&registry);
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() >= 2,
            "escaping must keep one sample per line: {line:?}"
        );
    }
    let samples = parse_prometheus(&text).unwrap();
    assert_eq!(
        sample_value(&samples, "wire_frames_total", &[("device", hostile)]),
        Some(1.0),
        "hostile label value must parse back verbatim"
    );
}

#[test]
fn snapshot_covers_the_same_series_as_the_text() {
    let registry = Registry::new();
    registry.counter("a_total", &[]).add(2);
    registry.gauge("b", &[]).set(-5);
    registry.histogram("c", &[]).record_f64(1.5);
    let snap = registry.snapshot();
    assert_eq!(snap.len(), 3);
    assert!(snap.validate().is_empty());
    assert_eq!(snap.counters[0].value, 2);
    assert_eq!(snap.gauges[0].value, -5);
    assert_eq!(snap.histograms[0].count, 1);
    // And it serializes — the telemetry_dump path.
    let json = serde_json::to_string_pretty(&snap).unwrap();
    let back: safeloc_telemetry::TelemetrySnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}
