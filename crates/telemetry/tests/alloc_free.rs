//! Pins the telemetry hot path allocation-free under a counting global
//! allocator — the same idiom `safeloc-nn` uses for its `Workspace`.
//! Recording into a pre-registered counter/gauge/histogram and recording
//! a span into a warmed flight recorder must not allocate: a serving hot
//! path records per request, and a single allocation there would show up
//! at city scale.

use safeloc_telemetry::{FlightRecorder, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn record_hot_path_is_allocation_free() {
    // Registration allocates (names, label vectors, the atomics) — that
    // happens once, at construction time, and is not the hot path.
    let registry = Registry::new();
    let counter = registry.counter("hot_requests_total", &[("building", "0")]);
    let gauge = registry.gauge("hot_queue_depth", &[]);
    let histogram = registry.histogram("hot_latency_ns", &[]);
    let recorder = FlightRecorder::new(64);

    // Warm every path once: lazy thread-id assignment, first bucket
    // touch, ring growth up to length.
    for i in 0..80u64 {
        counter.inc();
        gauge.set(i as i64);
        gauge.add(-1);
        histogram.record(i * 1_000);
        histogram.record_f64(i as f64 * 0.5);
        drop(recorder.span("warm", "alloc"));
    }

    let before = allocations();
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(3);
        gauge.set(i as i64);
        gauge.add(1);
        histogram.record(i);
        histogram.record_f64(i as f64);
        drop(recorder.span("hot", "alloc"));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "recording into pre-registered metrics must not allocate"
    );
}

#[test]
fn registered_handle_lookup_does_not_allocate_on_rerecord() {
    let registry = Registry::new();
    let h = registry.histogram("reused", &[]);
    h.record(1);
    let before = allocations();
    for v in 0..1_000 {
        h.record(v);
    }
    assert_eq!(allocations() - before, 0);
}
