//! The process-wide kill switch: disabled recording is a no-op for every
//! primitive. Its own test binary (= its own process) because flipping
//! the flag would race with parallel tests that record.

use safeloc_telemetry::{FlightRecorder, Registry};

#[test]
fn disabled_recording_moves_nothing() {
    let registry = Registry::new();
    let counter = registry.counter("c_total", &[]);
    let gauge = registry.gauge("g", &[]);
    let histogram = registry.histogram("h", &[]);
    let recorder = FlightRecorder::new(8);

    safeloc_telemetry::set_enabled(false);
    assert!(!safeloc_telemetry::enabled());
    counter.inc();
    counter.add(10);
    gauge.set(5);
    gauge.add(2);
    histogram.record(1);
    histogram.record_f64(2.0);
    drop(recorder.span("quiet", "t"));
    safeloc_telemetry::set_enabled(true);

    assert_eq!(counter.get(), 0);
    assert_eq!(gauge.get(), 0);
    assert_eq!(histogram.count(), 0);
    assert!(recorder.events().is_empty());
    assert_eq!(recorder.recorded(), 0);

    // Re-enabled: everything moves again, same handles.
    counter.inc();
    gauge.set(1);
    histogram.record(1);
    drop(recorder.span("loud", "t"));
    assert_eq!(counter.get(), 1);
    assert_eq!(gauge.get(), 1);
    assert_eq!(histogram.count(), 1);
    assert_eq!(recorder.events().len(), 1);
}
