//! Prometheus-text exposition: render a registry, and parse the text
//! back. The parser exists because exposition that only *looks* right is
//! worthless — the round-trip test and `telemetry_dump --check` both
//! re-parse what the renderer produced.

use crate::metric::Histogram;
use crate::registry::{MetricHandle, Registry};
use std::fmt::Write as _;

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Renders every series in `registry` as Prometheus text: `# TYPE` lines
/// per metric name, histograms as cumulative `_bucket{le=…}` series plus
/// `_sum` and `_count`, values in `{:?}`-style shortest-round-trip form.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_typed: Option<String> = None;
    registry.visit(|entry| {
        let kind = match &entry.handle {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        };
        if last_typed.as_deref() != Some(entry.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} {kind}", entry.name);
            last_typed = Some(entry.name.clone());
        }
        match &entry.handle {
            MetricHandle::Counter(c) => {
                out.push_str(&entry.name);
                render_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {}", c.get());
            }
            MetricHandle::Gauge(g) => {
                out.push_str(&entry.name);
                render_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {}", g.get());
            }
            MetricHandle::Histogram(h) => {
                let mut cumulative = 0u64;
                let counts = h.bucket_counts();
                for (i, n) in counts.iter().enumerate() {
                    // Only materialize buckets up to the last non-empty
                    // one: 48 zero lines per histogram would dominate the
                    // exposition.
                    cumulative += n;
                    let is_last_nonzero = counts[i + 1..].iter().all(|&m| m == 0);
                    if *n > 0 || !is_last_nonzero {
                        let _ = write!(out, "{}_bucket", entry.name);
                        let bound = Histogram::bucket_upper_bound(i);
                        render_labels(&mut out, &entry.labels, Some(("le", &format!("{bound}"))));
                        let _ = writeln!(out, " {cumulative}");
                    }
                }
                let _ = write!(out, "{}_bucket", entry.name);
                render_labels(&mut out, &entry.labels, Some(("le", "+Inf")));
                let _ = writeln!(out, " {}", h.count());
                let _ = write!(out, "{}_sum", entry.name);
                render_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {}", h.sum());
                let _ = write!(out, "{}_count", entry.name);
                render_labels(&mut out, &entry.labels, None);
                let _ = writeln!(out, " {}", h.count());
            }
        }
    });
    out
}

/// One parsed exposition sample: a series name, its labels and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Series name (histogram samples appear as `_bucket`/`_sum`/
    /// `_count`).
    pub name: String,
    /// Label pairs, in text order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text into samples. Comment (`#`) and blank lines are
/// skipped; any malformed sample line is an error naming the line.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (series, value) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unclosed label braces")?;
            if close < brace {
                return Err("unclosed label braces".to_string());
            }
            let name = line[..brace].trim();
            let labels = parse_labels(&line[brace + 1..close])?;
            let rest = line[close + 1..].trim();
            ((name.to_string(), labels), rest)
        }
        None => {
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or("empty sample")?;
            let rest = parts.next().ok_or("sample without a value")?;
            if parts.next().is_some() {
                return Err("trailing tokens after value".to_string());
            }
            ((name.to_string(), Vec::new()), rest)
        }
    };
    if series.0.is_empty()
        || !series
            .0
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {:?}", series.0));
    }
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|e| format!("bad value: {e}"))?,
    };
    Ok(PromSample {
        name: series.0,
        labels: series.1,
        value,
    })
}

/// Parses `k="v",k2="v2"` with escape handling, the inverse of
/// [`escape_label`].
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while chars.peek() == Some(&',') || chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label key".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value is not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated value for label {key}")),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping_round_trips() {
        let hostile = "he said \"hi\\there\"\nand left";
        let escaped = escape_label(hostile);
        assert!(!escaped.contains('\n'), "newlines must be escaped");
        let parsed = parse_labels(&format!("device=\"{escaped}\"")).unwrap();
        assert_eq!(parsed, vec![("device".to_string(), hostile.to_string())]);
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        assert!(parse_prometheus("no_value_here").is_err());
        assert!(parse_prometheus("bad{unclosed=\"x\" 3").is_err());
        assert!(parse_prometheus("bad-name 3").is_err());
        assert!(parse_prometheus("x{k=unquoted} 3").is_err());
        let err = parse_prometheus("ok 1\nbroken{ 2\n").unwrap_err();
        assert!(err.contains("line 2"), "errors name the line: {err}");
    }

    #[test]
    fn inf_values_parse() {
        let samples = parse_prometheus("h_bucket{le=\"+Inf\"} 4").unwrap();
        assert_eq!(samples[0].labels[0].1, "+Inf");
        assert_eq!(samples[0].value, 4.0);
    }
}
