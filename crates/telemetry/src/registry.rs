//! The metric registry: named, labeled handles behind a read-mostly lock.
//!
//! Registration is idempotent — asking for the same `(name, labels)`
//! returns the same underlying atomic, so two subsystems can share a
//! series without coordination. Handles are `Arc`s: instrumented code
//! registers once at construction and records lock-free forever after;
//! the registry lock is only taken to register or to snapshot.

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, TelemetrySnapshot};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// The handle a registered metric hands out.
#[derive(Debug, Clone)]
pub enum MetricHandle {
    /// A monotonic counter.
    Counter(Arc<Counter>),
    /// A point-in-time gauge.
    Gauge(Arc<Gauge>),
    /// A log₂ histogram.
    Histogram(Arc<Histogram>),
}

/// One registered metric: its identity plus the live handle.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Metric name (`snake_case`, subsystem-prefixed by convention).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The live handle.
    pub handle: MetricHandle,
}

#[derive(Default)]
struct Inner {
    metrics: Vec<MetricEntry>,
    index: HashMap<(String, Vec<(String, String)>), usize>,
}

/// A collection of named metrics — global (see [`crate::global`]) or
/// injected per subsystem.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().expect("telemetry registry poisoned");
        f.debug_struct("Registry")
            .field("metrics", &inner.metrics.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter under `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, labels, || {
            MetricHandle::Counter(Arc::new(Counter::new()))
        }) {
            MetricHandle::Counter(c) => c,
            // Same series name registered under another kind: hand out a
            // detached counter rather than panic — the caller's records
            // are dropped, the process lives, and exposition stays
            // type-consistent. Instrumentation owns its namespace, so
            // this is a programming error surfaced by a missing series.
            _ => Arc::new(Counter::new()),
        }
    }

    /// Registers (or retrieves) a gauge under `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, labels, || MetricHandle::Gauge(Arc::new(Gauge::new()))) {
            MetricHandle::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Registers (or retrieves) a histogram under `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, labels, || {
            MetricHandle::Histogram(Arc::new(Histogram::new()))
        }) {
            MetricHandle::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let key = (
            name.to_string(),
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect::<Vec<_>>(),
        );
        {
            let inner = self.inner.read().expect("telemetry registry poisoned");
            if let Some(&i) = inner.index.get(&key) {
                return inner.metrics[i].handle.clone();
            }
        }
        let mut inner = self.inner.write().expect("telemetry registry poisoned");
        // Lost the race to another registrant: return theirs.
        if let Some(&i) = inner.index.get(&key) {
            return inner.metrics[i].handle.clone();
        }
        let handle = make();
        let entry = MetricEntry {
            name: key.0.clone(),
            labels: key.1.clone(),
            handle: handle.clone(),
        };
        let i = inner.metrics.len();
        inner.metrics.push(entry);
        inner.index.insert(key, i);
        handle
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("telemetry registry poisoned")
            .metrics
            .len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every registered metric, sorted by `(name, labels)` so
    /// exposition is deterministic regardless of registration order.
    pub fn visit(&self, mut f: impl FnMut(&MetricEntry)) {
        let inner = self.inner.read().expect("telemetry registry poisoned");
        let mut sorted: Vec<&MetricEntry> = inner.metrics.iter().collect();
        sorted.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        for entry in sorted {
            f(entry);
        }
    }

    /// A point-in-time copy of every series, for JSON dumps.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        self.visit(|entry| match &entry.handle {
            MetricHandle::Counter(c) => snap.counters.push(CounterSample {
                name: entry.name.clone(),
                labels: entry.labels.clone(),
                value: c.get(),
            }),
            MetricHandle::Gauge(g) => snap.gauges.push(GaugeSample {
                name: entry.name.clone(),
                labels: entry.labels.clone(),
                value: g.get(),
            }),
            MetricHandle::Histogram(h) => snap.histograms.push(HistogramSample {
                name: entry.name.clone(),
                labels: entry.labels.clone(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.bucket_counts(),
                overflow: h.overflow_count(),
            }),
        });
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("requests_total", &[("building", "0")]);
        let b = r.counter("requests_total", &[("building", "0")]);
        let c = r.counter("requests_total", &[("building", "1")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2, "same series shares one atomic");
        assert_eq!(c.get(), 1, "different labels are a different series");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn kind_clash_yields_a_detached_handle_not_a_panic() {
        let r = Registry::new();
        let counter = r.counter("mixed", &[]);
        let gauge = r.gauge("mixed", &[]);
        counter.inc();
        gauge.set(99);
        assert_eq!(counter.get(), 1);
        assert_eq!(r.len(), 1, "the clashing registration is not recorded");
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn visit_orders_by_name_then_labels() {
        let r = Registry::new();
        r.counter("zz", &[]);
        r.counter("aa", &[("k", "2")]);
        r.counter("aa", &[("k", "1")]);
        let mut seen = Vec::new();
        r.visit(|e| seen.push((e.name.clone(), e.labels.clone())));
        assert_eq!(seen[0].0, "aa");
        assert_eq!(seen[0].1, vec![("k".to_string(), "1".to_string())]);
        assert_eq!(seen[2].0, "zz");
    }
}
