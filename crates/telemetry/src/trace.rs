//! The flight recorder: a bounded ring of completed [`Span`]s, exported
//! in the chrome://tracing JSON array format.
//!
//! Spans are RAII — [`FlightRecorder::span`] stamps the start, dropping
//! the guard records one [`TraceEvent`] into a pre-allocated ring under a
//! short mutex (no allocation; `tests/alloc_free.rs` pins it). The ring
//! keeps the most recent `capacity` events: when something goes wrong in
//! a long run, the recorder holds the last moments before it, which is
//! the entire point of a flight recorder.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Category, used as the chrome-trace `cat` field.
    pub cat: &'static str,
    /// Start, microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread (small dense ids, assigned per thread on first
    /// use).
    pub tid: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position; wraps at capacity.
    next: usize,
    /// Total events ever recorded (so readers know whether we wrapped).
    recorded: u64,
}

/// A bounded ring buffer of completed spans.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &ring.recorded)
            .finish()
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // relaxed: a unique-id ticket; only per-cell atomicity matters,
    // threads never synchronize through it.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` spans (minimum 1).
    /// The ring is allocated here, once — recording never allocates.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                next: 0,
                recorded: 0,
            }),
        }
    }

    /// Starts a span; the returned guard records on drop.
    pub fn span(&self, name: &'static str, cat: &'static str) -> Span<'_> {
        Span {
            recorder: self,
            name,
            cat,
            start: Instant::now(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total spans ever recorded (≥ the retained count once wrapped).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("flight recorder poisoned").recorded
    }

    /// Forgets every retained span (the epoch is unchanged).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        ring.buf.clear();
        ring.next = 0;
        ring.recorded = 0;
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let slot = ring.next;
            ring.buf[slot] = event;
        }
        ring.next = (ring.next + 1) % self.capacity;
        ring.recorded += 1;
    }

    /// The retained spans, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.clone()
        } else {
            // Wrapped: the oldest retained event sits at `next`.
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }

    /// Exports the retained spans as a chrome://tracing JSON array of
    /// complete (`"ph": "X"`) events — load it at `chrome://tracing` or
    /// in Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}}}",
                json_string(e.name),
                json_string(e.cat),
                e.ts_us,
                e.dur_us,
                e.tid
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Minimal JSON string escaping for span names/categories.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// RAII span guard: started by [`FlightRecorder::span`], records its
/// duration into the ring when dropped (unless recording is disabled).
#[must_use = "a span records when dropped; binding it to _ records a zero-length span"]
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a FlightRecorder,
    name: &'static str,
    cat: &'static str,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !crate::enabled() {
            return;
        }
        let ts_us = self
            .start
            .saturating_duration_since(self.recorder.epoch)
            .as_micros() as u64;
        let dur_us = self.start.elapsed().as_micros() as u64;
        self.recorder.push(TraceEvent {
            name: self.name,
            cat: self.cat,
            ts_us,
            dur_us,
            tid: TID.with(|t| *t),
        });
    }
}

static GLOBAL_RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global flight recorder (4096-span ring) instrumented
/// subsystems default to.
pub fn flight_recorder() -> &'static FlightRecorder {
    GLOBAL_RECORDER.get_or_init(|| FlightRecorder::new(4096))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let rec = FlightRecorder::new(8);
        {
            let _outer = rec.span("outer", "test");
            drop(rec.span("inner", "test"));
        }
        let events = rec.events();
        assert_eq!(events.len(), 2);
        // Inner dropped first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert!(events[1].dur_us >= events[0].dur_us);
        assert_eq!(rec.recorded(), 2);
    }

    #[test]
    fn chrome_trace_export_escapes_and_structures() {
        let rec = FlightRecorder::new(4);
        drop(rec.span("with \"quotes\"", "cat"));
        let json = rec.chrome_trace_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"ph\": \"X\""));
        // Machine-checkable: it must parse back as one complete event.
        // (The vendored `serde_json::Value` is not `Deserialize`, so we
        // parse into a typed struct instead.)
        #[derive(serde::Deserialize)]
        struct ChromeEvent {
            name: String,
            ph: String,
        }
        let parsed: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "with \"quotes\"");
        assert_eq!(parsed[0].ph, "X");
    }

    #[test]
    fn clear_forgets_but_keeps_recording() {
        let rec = FlightRecorder::new(4);
        drop(rec.span("a", "t"));
        rec.clear();
        assert!(rec.events().is_empty());
        drop(rec.span("b", "t"));
        assert_eq!(rec.events()[0].name, "b");
    }
}
