//! The three metric primitives. All record paths are wait-free (relaxed
//! atomics, no locks) and allocation-free; `tests/alloc_free.rs` pins
//! both properties under a counting global allocator.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Log₂ histogram bucket count: bucket `i` holds samples `≤ 2^i`, so the
/// last finite bound is `2^47` — comfortably past a day in nanoseconds or
/// a terabyte in bytes. Larger and non-finite samples land in the
/// overflow (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            // relaxed: monotonic event count; no other memory is
            // published through it, readers only need eventual totals.
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        // relaxed: snapshot read; exposition tolerates inter-metric skew.
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (queue depth, published version, bytes
/// resident).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            // relaxed: last-writer-wins point-in-time value, independent
            // of any other shared state.
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the value by `delta` (negative to decrement); returns the
    /// value *after* the adjustment, so a submit path can read the depth
    /// it just created without a second load.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        // relaxed: the RMW is atomic on this one cell, which is all the
        // depth accounting needs; nothing else is ordered through it.
        if crate::enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed) + delta
        } else {
            self.value.load(Ordering::Relaxed)
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        // relaxed: snapshot read; exposition tolerates inter-metric skew.
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂ histogram: [`HISTOGRAM_BUCKETS`] power-of-two
/// buckets plus one overflow bucket, a sample count and a running sum.
///
/// Recording is one bucket `fetch_add`, one count `fetch_add` and one
/// lock-free CAS loop folding the sample into the `f64` sum — no locks,
/// no allocation, no panic for *any* input: zero, subnormal, negative,
/// infinite and NaN samples all land somewhere (non-finite ones in the
/// overflow bucket, leaving the sum untouched so one NaN cannot poison
/// the average).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    /// `f64` bit pattern of the running sum, folded with a CAS loop.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The inclusive upper bound of bucket `i` (`2^i`).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        (1u128 << i) as f64
    }

    /// Index of the smallest bucket holding `v`, or `None` for the
    /// overflow bucket.
    #[inline]
    fn bucket_index(v: u64) -> Option<usize> {
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros()) as usize
        };
        (idx < HISTOGRAM_BUCKETS).then_some(idx)
    }

    /// Records one integer sample (nanoseconds, bytes, sizes, depths).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        // relaxed: each bucket/count cell is an independent monotonic
        // counter; snapshots may see a sample in the bucket before the
        // count (or vice versa), which exposition accepts by design.
        match Self::bucket_index(v) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        // relaxed: independent monotonic counter, as above.
        self.count.fetch_add(1, Ordering::Relaxed);
        self.add_to_sum(v as f64);
    }

    /// Records one float sample. Negative, zero and subnormal samples go
    /// to the first bucket (clamped to zero in the sum); `inf` and `NaN`
    /// count in the overflow bucket without touching the sum.
    #[inline]
    pub fn record_f64(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if !v.is_finite() {
            // relaxed: independent monotonic counters, as in record().
            self.overflow.fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let clamped = v.max(0.0);
        // ceil then the integer bucketing: a sample of 2.3 belongs in the
        // `le 4` bucket, exactly as the integer 3 would. Values beyond
        // u64 saturate into the overflow bucket via the `as` conversion.
        let ceiled = clamped.ceil();
        // relaxed: independent monotonic counters, as in record().
        if ceiled >= u64::MAX as f64 {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            match Self::bucket_index(ceiled as u64) {
                Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
                None => self.overflow.fetch_add(1, Ordering::Relaxed),
            };
        }
        // relaxed: independent monotonic counter, as in record().
        self.count.fetch_add(1, Ordering::Relaxed);
        self.add_to_sum(clamped);
    }

    /// Folds `v` into the running sum with a lock-free CAS loop.
    #[inline]
    fn add_to_sum(&self, v: f64) {
        // relaxed: the CAS loop only needs atomicity of this one cell —
        // the loop re-reads on failure, and no other location is
        // published through the sum, so no acquire/release edge exists.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            // relaxed: see above; failure ordering is a pure re-read.
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Per-bucket counts (not cumulative), in bound order.
    pub fn bucket_counts(&self) -> Vec<u64> {
        // relaxed: snapshot reads; exposition tolerates skew between
        // cells (a bucket may lead its count and vice versa).
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Samples beyond the last finite bound (plus non-finite samples).
    pub fn overflow_count(&self) -> u64 {
        // relaxed: snapshot read, as in bucket_counts().
        self.overflow.load(Ordering::Relaxed)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        // relaxed: snapshot read, as in bucket_counts().
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite samples (clamped at zero).
    pub fn sum(&self) -> f64 {
        // relaxed: snapshot read, as in bucket_counts().
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.add(-3), 4);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn integer_samples_land_in_their_power_of_two_bucket() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 1024] {
            h.record(v);
        }
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 2, "0 and 1 share the le-1 bucket");
        assert_eq!(buckets[1], 1, "2 is exactly le-2");
        assert_eq!(buckets[2], 2, "3 and 4 are le-4");
        assert_eq!(buckets[3], 1, "5 is le-8");
        assert_eq!(buckets[10], 1, "1024 is exactly le-1024");
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1039.0);
        assert_eq!(h.overflow_count(), 0);
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        assert_eq!(Histogram::bucket_upper_bound(0), 1.0);
        assert_eq!(Histogram::bucket_upper_bound(10), 1024.0);
        // Exactly 2^i stays in bucket i; 2^i + 1 moves up.
        assert_eq!(Histogram::bucket_index(1 << 20), Some(20));
        assert_eq!(Histogram::bucket_index((1 << 20) + 1), Some(21));
        // Beyond the last finite bound: overflow.
        assert_eq!(Histogram::bucket_index(u64::MAX), None);
        assert_eq!(Histogram::bucket_index(1 << 47), Some(47));
        assert_eq!(Histogram::bucket_index((1 << 47) + 1), None);
    }

    // The kill-switch behavior is pinned in `tests/disabled.rs` — its own
    // test binary, because flipping the process-wide flag would race with
    // parallel unit tests that record.
}
