//! Lock-light observability for the SAFELOC stack: atomics-based
//! counters/gauges/histograms in a [`Registry`], a [`Span`] API over a
//! bounded [`FlightRecorder`] ring buffer, and exposition as
//! Prometheus-style text, a serde JSON snapshot, or chrome://tracing
//! JSON.
//!
//! # Design
//!
//! Everything the hot paths touch is wait-free and allocation-free:
//! recording into a pre-registered [`Counter`], [`Gauge`] or
//! [`Histogram`] is a handful of relaxed atomic operations (pinned by
//! the counting-allocator test in `tests/alloc_free.rs`, the same idiom
//! `safeloc-nn`'s `Workspace` uses). Locks exist only at the edges:
//! metric *registration* takes a write lock once per metric, label-set
//! lookup in instrumented subsystems is a read-mostly `RwLock`, and the
//! flight recorder holds a short mutex over a pre-allocated ring (spans
//! fire per batch/round, not per sample).
//!
//! # Pure side channel
//!
//! Telemetry observes; it never participates. No RNG is consumed, no
//! ordering is introduced, no value is fed back into computation — so
//! every bitwise-pinned trajectory (round lifecycle, loopback rounds,
//! thread invariance) is unchanged with telemetry enabled. A process-wide
//! kill switch ([`set_enabled`]) turns every record into a single relaxed
//! load, which is what the instrumented-vs-uninstrumented overhead
//! comparison in `serve_bench`/`fleet_scale` measures.
//!
//! # Exposition
//!
//! [`render_prometheus`] renders a registry as Prometheus text (escaped
//! label values, cumulative `_bucket`/`_sum`/`_count` histogram series);
//! [`parse_prometheus`] parses it back (the round-trip test and
//! `telemetry_dump --check` share it). [`Registry::snapshot`] produces a
//! serde-serializable [`TelemetrySnapshot`] for headless JSON dumps, and
//! [`FlightRecorder::chrome_trace_json`] exports the span ring in the
//! chrome://tracing array format.

#![warn(missing_docs)]

mod expose;
mod metric;
mod registry;
mod snapshot;
mod trace;

pub use expose::{parse_prometheus, render_prometheus, PromSample};
pub use metric::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{MetricEntry, MetricHandle, Registry};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, TelemetrySnapshot};
pub use trace::{flight_recorder, FlightRecorder, Span, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide kill switch consulted by every record path. Defaults to
/// enabled; benches flip it off to measure the uninstrumented baseline.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all recording process-wide. Registration and
/// exposition are unaffected — a disabled registry still renders, it just
/// stops moving.
pub fn set_enabled(enabled: bool) {
    // relaxed: a standalone on/off flag — record paths may observe the
    // flip slightly late, which only delays when counting stops/starts.
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled (one relaxed load — this is the
/// entire cost of a disabled record).
#[inline]
pub fn enabled() -> bool {
    // relaxed: see set_enabled — no data is guarded by this flag.
    ENABLED.load(Ordering::Relaxed)
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-global registry instrumented subsystems default to.
/// Constructors that accept an injected registry (`Service::
/// start_with_telemetry`) bypass it for isolated tests.
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}
