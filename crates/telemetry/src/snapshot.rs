//! Serde-serializable point-in-time snapshots, for headless JSON dumps
//! (`telemetry_dump`) and the CI artifact.

use serde::{Deserialize, Serialize};

/// One counter series at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Series name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Count at snapshot time.
    pub value: u64,
}

/// One gauge series at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Series name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: i64,
}

/// One histogram series at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Series name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Total samples.
    pub count: u64,
    /// Sum of finite samples.
    pub sum: f64,
    /// Per-bucket (non-cumulative) counts, bound order.
    pub buckets: Vec<u64>,
    /// Samples past the last finite bound (incl. non-finite ones).
    pub overflow: u64,
}

/// Everything a registry holds, frozen.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// All counter series.
    pub counters: Vec<CounterSample>,
    /// All gauge series.
    pub gauges: Vec<GaugeSample>,
    /// All histogram series.
    pub histograms: Vec<HistogramSample>,
}

impl TelemetrySnapshot {
    /// Total number of series across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when no series was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural sanity check, mirroring `PerfReport::validate`: every
    /// histogram's bucket total must equal its count, and sums must be
    /// finite. Returns the list of problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for h in &self.histograms {
            let bucket_total: u64 = h.buckets.iter().sum::<u64>() + h.overflow;
            if bucket_total != h.count {
                problems.push(format!(
                    "histogram {}: bucket total {bucket_total} != count {}",
                    h.name, h.count
                ));
            }
            if !h.sum.is_finite() {
                problems.push(format!("histogram {}: non-finite sum", h.name));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_round_trip_through_serde() {
        let snap = TelemetrySnapshot {
            counters: vec![CounterSample {
                name: "x_total".into(),
                labels: vec![("k".into(), "v".into())],
                value: 3,
            }],
            gauges: vec![],
            histograms: vec![HistogramSample {
                name: "h".into(),
                labels: vec![],
                count: 2,
                sum: 5.0,
                buckets: vec![1, 1],
                overflow: 0,
            }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(snap.len(), 2);
        assert!(snap.validate().is_empty());
    }

    #[test]
    fn validation_catches_inconsistent_histograms() {
        let snap = TelemetrySnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![HistogramSample {
                name: "bad".into(),
                labels: vec![],
                count: 5,
                sum: f64::NAN,
                buckets: vec![1],
                overflow: 0,
            }],
        };
        let problems = snap.validate();
        assert_eq!(problems.len(), 2);
        assert!(problems[0].contains("bucket total"));
        assert!(problems[1].contains("non-finite"));
    }
}
