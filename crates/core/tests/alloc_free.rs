//! The fused network's workspace training path carries the same headline
//! guarantee as `safeloc-nn`'s: after one warmup step, a full joint
//! (CE + MSE) forward+backward+optimizer step performs **zero heap
//! allocations** — and computes exactly what the allocating path computes.

use safeloc::{FusedConfig, FusedNetwork, FusedWorkspace};
use safeloc_nn::{Adam, HasParams, Matrix, MseLoss, Optimizer, SparseCrossEntropyLoss};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The paper's fused geometry for Building 1 (203 APs, 60 RPs).
fn paper_network(seed: u64) -> FusedNetwork {
    FusedNetwork::new(&FusedConfig::paper(203, 60, seed))
}

fn paper_batch(net: &FusedNetwork, batch: usize) -> (Matrix, Vec<usize>) {
    let x = Matrix::from_fn(batch, net.input_dim(), |r, c| {
        ((r * 31 + c * 7) % 100) as f32 / 100.0
    });
    let labels: Vec<usize> = (0..batch).map(|r| r % net.n_classes()).collect();
    (x, labels)
}

#[test]
fn fused_step_is_allocation_free_after_warmup() {
    let mut net = paper_network(7);
    let (x, labels) = paper_batch(&net, 32);
    let mut opt = Adam::new(1e-3);
    let mut ws = FusedWorkspace::new();

    // Warmup: shapes the trace/gradient buffers and the Adam moments.
    for _ in 0..2 {
        net.train_batch_weighted_with(&x, &labels, &mut opt, true, 1.0, &mut ws);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        net.train_batch_weighted_with(&x, &labels, &mut opt, true, 1.0, &mut ws);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm fused training step allocated {} times",
        after - before
    );
}

#[test]
fn fused_step_is_allocation_free_in_joint_decoder_mode_too() {
    // detach_decoder = false exercises the extra bottleneck-combination
    // branch and the decoder's layer-0 input gradient.
    let mut net = paper_network(9);
    let (x, labels) = paper_batch(&net, 16);
    let mut opt = Adam::new(1e-3);
    let mut ws = FusedWorkspace::new();
    for _ in 0..2 {
        net.train_batch_weighted_with(&x, &labels, &mut opt, false, 0.5, &mut ws);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        net.train_batch_weighted_with(&x, &labels, &mut opt, false, 0.5, &mut ws);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm joint-decoder step allocated {} times",
        after - before
    );
}

/// The workspace path must compute exactly the same update as the
/// allocating forward/backward path — buffer reuse is an optimization,
/// not a semantics change.
#[test]
fn fused_workspace_path_matches_allocating_path_bitwise() {
    let mut a = FusedNetwork::new(&FusedConfig {
        input_dim: 20,
        encoder_dims: vec![16, 8],
        decoder_hidden: vec![16],
        n_classes: 5,
        seed: 11,
    });
    let mut b = a.clone();
    let (x, labels) = paper_batch(&a, 8);

    let mut opt_a = Adam::new(1e-3);
    let mut opt_b = Adam::new(1e-3);
    let mut ws = FusedWorkspace::new();

    for detach in [true, false] {
        for _ in 0..3 {
            // Allocating reference: the pre-workspace step, spelled out.
            let trace = a.forward_trace(&x);
            let ce_a = SparseCrossEntropyLoss.loss(&trace.logits, &labels);
            let mse_a = MseLoss.loss(&trace.recon, &x);
            let d_logits = SparseCrossEntropyLoss.grad(&trace.logits, &labels);
            let d_recon = MseLoss.grad(&trace.recon, &x).scale(0.7);
            let grads = a
                .backward(&trace, Some(&d_logits), Some(&d_recon), detach)
                .into_flat();
            opt_a.step(a.param_tensors_mut(), &grads);

            let (ce_b, mse_b) =
                b.train_batch_weighted_with(&x, &labels, &mut opt_b, detach, 0.7, &mut ws);
            assert_eq!(ce_a, ce_b, "CE diverged (detach={detach})");
            assert_eq!(mse_a, mse_b, "MSE diverged (detach={detach})");
        }
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "weights diverged (detach={detach})"
        );
    }
}
