//! Property-based tests for the SAFELOC core invariants.

use proptest::prelude::*;
use safeloc::{
    saliency_matrix, AggregationMode, FusedConfig, FusedNetwork, RceMode, SaliencyAggregator,
};
use safeloc_fl::{Aggregator, ClientUpdate};
use safeloc_nn::{HasParams, Matrix, NamedParams};

fn matrix_strategy(rows: usize, cols: usize, lo: f32, hi: f32) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(lo..hi, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

fn tiny_net(seed: u64) -> FusedNetwork {
    FusedNetwork::new(&FusedConfig {
        input_dim: 6,
        encoder_dims: vec![8, 4],
        decoder_hidden: vec![8],
        n_classes: 3,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Saliency values always live in (0, 1], for any sharpness.
    #[test]
    fn saliency_is_a_gate(
        lm in matrix_strategy(2, 5, -100.0, 100.0),
        gm in matrix_strategy(2, 5, -100.0, 100.0),
        k in 0.0f32..50.0,
    ) {
        let s = saliency_matrix(&lm, &gm, k);
        prop_assert!(s.as_slice().iter().all(|&v| v > 0.0 && v <= 1.0 + 1e-6));
    }

    /// Zero deviation always maps to saliency exactly 1.
    #[test]
    fn identical_weights_have_full_saliency(
        w in matrix_strategy(1, 8, -10.0, 10.0),
        k in 0.0f32..50.0,
    ) {
        let s = saliency_matrix(&w, &w, k);
        prop_assert!(s.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    /// Normalized aggregation moves every element by strictly less than
    /// 1/sharpness per round — the bounded-influence guarantee.
    #[test]
    fn normalized_aggregation_is_bounded(
        gm_vals in prop::collection::vec(-2.0f32..2.0, 6),
        deltas in prop::collection::vec(-100.0f32..100.0, 6),
    ) {
        let gm = NamedParams::new(vec![(
            "w".into(),
            Matrix::from_vec(1, 6, gm_vals.clone()).unwrap(),
        )]);
        let lm = NamedParams::new(vec![(
            "w".into(),
            Matrix::from_vec(
                1,
                6,
                gm_vals.iter().zip(&deltas).map(|(g, d)| g + d).collect(),
            )
            .unwrap(),
        )]);
        let agg = SaliencyAggregator::new(AggregationMode::Normalized);
        let bound = 1.0 / agg.sharpness;
        let out = agg.into_pipeline().aggregate(&gm, &[ClientUpdate::new(0, lm, 1)]);
        let step = out.params.get("w").unwrap().sub(gm.get("w").unwrap());
        prop_assert!(
            step.as_slice().iter().all(|v| v.abs() < bound + 1e-5),
            "step exceeded 1/k bound: {:?}", step
        );
    }

    /// Aggregating any set of finite updates never produces non-finite
    /// weights, in either mode.
    #[test]
    fn aggregation_preserves_finiteness(
        vals in prop::collection::vec(-1000.0f32..1000.0, 12),
        literal in any::<bool>(),
    ) {
        let gm = NamedParams::new(vec![(
            "w".into(),
            Matrix::from_vec(1, 4, vals[..4].to_vec()).unwrap(),
        )]);
        let updates: Vec<ClientUpdate> = (0..2)
            .map(|i| {
                ClientUpdate::new(
                    i,
                    NamedParams::new(vec![(
                        "w".into(),
                        Matrix::from_vec(1, 4, vals[4 * (i + 1)..4 * (i + 2)].to_vec()).unwrap(),
                    )]),
                    1,
                )
            })
            .collect();
        let mode = if literal { AggregationMode::Literal } else { AggregationMode::Normalized };
        let out = SaliencyAggregator::new(mode).into_pipeline().aggregate(&gm, &updates);
        prop_assert!(!out.params.has_non_finite());
    }

    /// The detection pipeline never panics and always returns one label and
    /// one flag per row, for arbitrary normalized inputs and thresholds.
    #[test]
    fn detection_is_total(
        x in matrix_strategy(3, 6, 0.0, 1.0),
        tau in 0.0f32..5.0,
        seed in 0u64..50,
    ) {
        let net = tiny_net(seed);
        let out = net.predict_with_detection(&x, tau, RceMode::Relative);
        prop_assert_eq!(out.labels.len(), 3);
        prop_assert_eq!(out.flagged.len(), 3);
        prop_assert_eq!(out.rce.len(), 3);
        prop_assert!(out.labels.iter().all(|&l| l < 3));
        prop_assert!(out.rce.iter().all(|r| r.is_finite() && *r >= 0.0));
    }

    /// De-noising returns values in [0,1] and touches only flagged rows.
    #[test]
    fn denoise_only_touches_flagged_rows(
        x in matrix_strategy(4, 6, 0.0, 1.0),
        tau in 0.05f32..3.0,
        seed in 0u64..50,
    ) {
        let net = tiny_net(seed);
        let (den, flagged) = net.denoise_matrix(&x, tau, RceMode::Relative);
        prop_assert!(den.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        for (r, &was_flagged) in flagged.iter().enumerate() {
            if !was_flagged {
                prop_assert_eq!(den.row(r), x.row(r), "unflagged row {} was altered", r);
            }
        }
    }

    /// An infinite threshold flags nothing; a negative threshold flags
    /// everything (RCE >= 0).
    #[test]
    fn threshold_extremes(
        x in matrix_strategy(3, 6, 0.01, 1.0),
        seed in 0u64..20,
    ) {
        let net = tiny_net(seed);
        let none = net.predict_with_detection(&x, f32::INFINITY, RceMode::Relative);
        prop_assert!(none.flagged.iter().all(|&f| !f));
        let all = net.predict_with_detection(&x, -1.0, RceMode::Relative);
        prop_assert!(all.flagged.iter().all(|&f| f));
    }

    /// Snapshot/load through NamedParams preserves fused-network behaviour.
    #[test]
    fn fused_snapshot_round_trip(seed in 0u64..100) {
        let net = tiny_net(seed);
        let mut other = tiny_net(seed + 1);
        other.load(&net.snapshot()).unwrap();
        let x = Matrix::from_rows(&[vec![0.25; 6]]);
        prop_assert_eq!(net.predict(&x), other.predict(&x));
        let a = net.rce(&x, RceMode::Relative);
        let b = other.rce(&x, RceMode::Relative);
        prop_assert!((a[0] - b[0]).abs() < 1e-6);
    }
}
