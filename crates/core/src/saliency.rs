//! Saliency-map based aggregation (paper §IV.B, Eqs. 6–9) — SAFELOC's
//! terminal [`Combiner`] in the defense-pipeline API.
//!
//! For every weight tensor of every surviving local model, the server
//! computes the elementwise deviation from the global model (Eq. 6), maps
//! it through the inverse-deviation saliency `S = 1 / (1 + |ΔW|)` (Eq. 7,
//! values in `(0, 1]`), and uses `S` to shrink the influence of heavily
//! deviating weights before aggregation (Eqs. 8–9).
//!
//! Eq. 9 as printed (`W'_GM = W_GM + W_Adj`) has no fixed point — with
//! identical models it doubles the weights — so two readings are provided
//! (see `DESIGN.md` §5):
//!
//! * [`AggregationMode::Normalized`] (default):
//!   `W'_GM = W_GM + mean_i(S_i ∘ (W_LM,i − W_GM))`. The saliency gates the
//!   *update direction*; identical models are a fixed point, and the
//!   elementwise step is bounded by `|Δ|/(1+|Δ|) < 1`, which is exactly the
//!   bounded-influence property the paper claims.
//! * [`AggregationMode::Literal`]: Eq. 9 as printed, applied to the mean
//!   adjusted LM and damped by ½ so identical models remain a fixed point:
//!   `W'_GM = (W_GM + mean_i(S_i ∘ W_LM,i)) / 2`.
//!
//! Saliency is a *soft* defense: it rejects nothing, so as a combiner it
//! accepts every surviving update with its mean elementwise saliency as
//! the acceptance weight. [`SaliencyAggregator::into_pipeline`] wraps it
//! into the stage-less canonical pipeline SAFELOC deploys; any screening
//! stage (norm clipping, a history screen) can be composed in front of it
//! from a scenario spec.

use rayon::prelude::*;
use safeloc_fl::defense::{Combiner, DefensePipeline, RoundContext, Verdicts};
use safeloc_nn::{Matrix, NamedParams};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Interpretation of Eq. 9 (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Saliency-gated delta aggregation (default, convergent).
    Normalized,
    /// The printed equation, damped to have a fixed point.
    Literal,
}

/// Elementwise saliency matrix `S = 1 / (1 + k·|lm − gm|)` (Eqs. 6–7).
///
/// `sharpness` (`k`) rescales the deviation into the regime where Eq. 7
/// discriminates: the equation as printed assumes deviations of order 1,
/// while Adam-trained local updates deviate by O(0.1) per weight — at that
/// scale `1/(1+ΔW) ≈ 0.9` and poisoned tensors would pass almost untouched.
/// `k = 10` maps a 0.1-deviation to the saliency the paper's Eq. 7 assigns
/// a deviation of 1.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn saliency_matrix(lm: &Matrix, gm: &Matrix, sharpness: f32) -> Matrix {
    lm.sub(gm).map(move |d| 1.0 / (1.0 + sharpness * d.abs()))
}

/// SAFELOC's server-side aggregation rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaliencyAggregator {
    /// Eq. 9 interpretation.
    pub mode: AggregationMode,
    /// Deviation rescaling `k` in `S = 1/(1 + k·|ΔW|)` (see
    /// [`saliency_matrix`]).
    pub sharpness: f32,
}

impl SaliencyAggregator {
    /// Creates the combiner with the default sharpness of 10.
    pub fn new(mode: AggregationMode) -> Self {
        Self {
            mode,
            sharpness: 10.0,
        }
    }

    /// Overrides the deviation sharpness.
    pub fn with_sharpness(mut self, sharpness: f32) -> Self {
        self.sharpness = sharpness;
        self
    }

    /// Display label, distinguishing the Eq. 9 readings.
    pub fn label(&self) -> &'static str {
        match self.mode {
            AggregationMode::Normalized => "Saliency",
            AggregationMode::Literal => "Saliency(Literal)",
        }
    }

    /// The canonical SAFELOC pipeline: no screening stages, saliency
    /// combining. This is what [`SafeLoc`](crate::SafeLoc) deploys.
    pub fn into_pipeline(self) -> DefensePipeline {
        DefensePipeline::new(self.label(), Vec::new(), Box::new(self))
    }
}

impl Default for SaliencyAggregator {
    fn default() -> Self {
        Self::new(AggregationMode::Normalized)
    }
}

impl Combiner for SaliencyAggregator {
    fn name(&self) -> &'static str {
        "saliency"
    }

    fn combine(&mut self, ctx: &RoundContext<'_>, verdicts: &mut Verdicts) -> NamedParams {
        let active = verdicts.active_indices();
        let sources: Vec<Cow<'_, NamedParams>> =
            active.iter().map(|&i| verdicts.effective(ctx, i)).collect();
        let global = ctx.global();
        let n = sources.len() as f32;
        // Tensors are independent, so the per-tensor saliency-gate-and-
        // average work fans out across threads; names() fixes the order so
        // results are identical for any thread count. Each tensor's pass
        // also sums the saliency it just computed per update, so the
        // decision weights below reuse the aggregation work instead of a
        // second full pass over the parameters.
        let names: Vec<&str> = global.names();
        let mode = self.mode;
        let sharpness = self.sharpness;
        let per_tensor: Vec<(Matrix, Vec<f64>)> = names
            .par_iter()
            .map(|name| {
                let gm = global.get(name).expect("same arch");
                let mut saliency_sums = vec![0.0f64; sources.len()];
                let next = match mode {
                    AggregationMode::Normalized => {
                        // W' = W_GM + mean_i( S_i ∘ (W_LM,i − W_GM) )
                        let mut acc = gm.scale(0.0);
                        for (p, sum) in sources.iter().zip(&mut saliency_sums) {
                            let lm = p.get(name).expect("same arch");
                            let s = saliency_matrix(lm, gm, sharpness);
                            *sum += s.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                            let gated = s.hadamard(&lm.sub(gm));
                            acc.axpy(1.0 / n, &gated);
                        }
                        acc.add_assign(gm);
                        acc
                    }
                    AggregationMode::Literal => {
                        // W' = ( W_GM + mean_i( S_i ∘ W_LM,i ) ) / 2
                        let mut acc = gm.scale(0.0);
                        for (p, sum) in sources.iter().zip(&mut saliency_sums) {
                            let lm = p.get(name).expect("same arch");
                            let s = saliency_matrix(lm, gm, sharpness);
                            *sum += s.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                            acc.axpy(1.0 / n, &s.hadamard(lm));
                        }
                        let mut next = gm.add(&acc);
                        next.scale_assign(0.5);
                        next
                    }
                };
                (next, saliency_sums)
            })
            .collect();
        let mut totals = vec![0.0f64; sources.len()];
        for (_, sums) in &per_tensor {
            for (t, s) in totals.iter_mut().zip(sums) {
                *t += s;
            }
        }
        // Saliency is a *soft* defense: no update is ever rejected
        // outright. The decision trail records each update's mean
        // elementwise saliency as its acceptance weight — honest updates
        // sit near 1, heavily deviating (poisoned) updates near 0 — which
        // is what reports use to show suppression.
        let num_params = global.num_params().max(1) as f64;
        for (&i, sum) in active.iter().zip(totals) {
            verdicts.set_weight(i, (sum / num_params) as f32);
        }
        names
            .into_iter()
            .map(str::to_string)
            .zip(per_tensor.into_iter().map(|(t, _)| t))
            .collect()
    }

    fn clone_combiner(&self) -> Box<dyn Combiner> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_fl::{Aggregator, ClientUpdate, UpdateDecision};

    fn params(w: &[f32]) -> NamedParams {
        NamedParams::new(vec![(
            "w".into(),
            Matrix::from_vec(1, w.len(), w.to_vec()).unwrap(),
        )])
    }

    fn update(id: usize, w: &[f32]) -> ClientUpdate {
        ClientUpdate::new(id, params(w), 10)
    }

    fn saliency(mode: AggregationMode) -> DefensePipeline {
        SaliencyAggregator::new(mode).into_pipeline()
    }

    fn default_saliency() -> DefensePipeline {
        SaliencyAggregator::default().into_pipeline()
    }

    #[test]
    fn saliency_values_in_unit_interval() {
        let lm = Matrix::row_vector(&[0.0, 1.0, -3.0, 100.0]);
        let gm = Matrix::row_vector(&[0.0, 0.0, 0.0, 0.0]);
        // sharpness 1 = the paper's Eq. 7 exactly.
        let s = saliency_matrix(&lm, &gm, 1.0);
        assert!(
            (s.get(0, 0) - 1.0).abs() < 1e-6,
            "zero deviation -> saliency 1"
        );
        assert!((s.get(0, 1) - 0.5).abs() < 1e-6);
        assert!((s.get(0, 2) - 0.25).abs() < 1e-6);
        assert!(s.get(0, 3) < 0.01, "huge deviation -> tiny saliency");
        assert!(s.as_slice().iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn sharpness_rescales_deviations() {
        let lm = Matrix::row_vector(&[0.1]);
        let gm = Matrix::row_vector(&[0.0]);
        let soft = saliency_matrix(&lm, &gm, 1.0).get(0, 0);
        let sharp = saliency_matrix(&lm, &gm, 10.0).get(0, 0);
        assert!((soft - 1.0 / 1.1).abs() < 1e-6);
        assert!(
            (sharp - 0.5).abs() < 1e-6,
            "k=10 maps 0.1 deviation to S=0.5"
        );
    }

    #[test]
    fn identical_updates_are_a_fixed_point_normalized() {
        let g = params(&[1.0, -2.0, 0.5]);
        let u = vec![
            ClientUpdate::new(0, g.clone(), 1),
            ClientUpdate::new(1, g.clone(), 1),
        ];
        let out = default_saliency().aggregate(&g, &u);
        assert_eq!(out.params, g);
    }

    #[test]
    fn identical_updates_are_a_fixed_point_literal() {
        let g = params(&[1.0]);
        // S = 1 for identical, so S∘W_LM = 1*1 = 1, mean = 1,
        // W' = (1 + 1)/2 = 1. Fixed point holds.
        let u = vec![ClientUpdate::new(0, g.clone(), 1)];
        let out = saliency(AggregationMode::Literal).aggregate(&g, &u);
        let w = out.params.get("w").unwrap().get(0, 0);
        assert!((w - 1.0).abs() < 1e-6, "literal fixed point broken: {w}");
    }

    #[test]
    fn small_honest_updates_pass_almost_unchanged() {
        let g = params(&[0.0]);
        let u = vec![update(0, &[0.1])];
        let out = default_saliency().aggregate(&g, &u);
        let w = out.params.get("w").unwrap().get(0, 0);
        // S = 1/(1 + 10·0.1) = 0.5; step = 0.05 = 50% of the honest delta.
        assert!(
            (w - 0.05).abs() < 1e-3,
            "honest update over-suppressed: {w}"
        );
    }

    #[test]
    fn large_poisoned_updates_are_bounded() {
        let g = params(&[0.0]);
        let u = vec![update(0, &[1000.0])];
        let out = default_saliency().aggregate(&g, &u);
        let w = out.params.get("w").unwrap().get(0, 0);
        // Elementwise influence bound: |Δ|/(1+k|Δ|) < 1/k.
        assert!(w < 0.1, "poisoned step not bounded: {w}");
        assert!(w > 0.099, "bound should be tight for huge deltas: {w}");
    }

    #[test]
    fn poisoned_minority_is_damped_relative_to_fedavg() {
        let g = params(&[0.0]);
        let honest = [0.1f32, 0.12, 0.09, 0.11, 0.1];
        let mut updates: Vec<ClientUpdate> = honest
            .iter()
            .enumerate()
            .map(|(i, &w)| update(i, &[w]))
            .collect();
        updates.push(update(9, &[50.0])); // attacker
        let out = default_saliency().aggregate(&g, &updates);
        let w = out.params.get("w").unwrap().get(0, 0);
        // FedAvg would land at (0.52/6 of sum…) ≈ 8.42; saliency keeps the
        // step near the honest consensus plus a bounded attacker residue.
        let fedavg = (honest.iter().sum::<f32>() + 50.0) / 6.0;
        assert!(
            w < fedavg / 10.0,
            "saliency barely better than FedAvg: {w} vs {fedavg}"
        );
        assert!(w < 0.1, "aggregate drifted: {w}");
    }

    #[test]
    fn empty_round_keeps_global() {
        let g = params(&[3.0]);
        assert_eq!(default_saliency().aggregate(&g, &[]).params, g);
        assert_eq!(
            saliency(AggregationMode::Literal).aggregate(&g, &[]).params,
            g
        );
    }

    #[test]
    fn non_finite_updates_are_dropped() {
        let g = params(&[0.0]);
        let u = vec![update(0, &[0.2]), update(1, &[f32::NAN])];
        let out = default_saliency().aggregate(&g, &u);
        assert!(!out.params.has_non_finite());
        assert_eq!(out.rejected(), 1);
    }

    #[test]
    fn decision_weights_expose_attacker_suppression() {
        let g = params(&[0.0, 0.0]);
        let u = vec![update(0, &[0.05, 0.05]), update(1, &[40.0, -40.0])];
        let out = default_saliency().aggregate(&g, &u);
        let weight = |d: &UpdateDecision| match d {
            UpdateDecision::Accepted { weight } => *weight,
            other => panic!("saliency never rejects, got {other:?}"),
        };
        let honest = weight(&out.decisions[0]);
        let attacker = weight(&out.decisions[1]);
        assert!(honest > 0.6, "honest saliency weight {honest}");
        assert!(attacker < 0.01, "attacker saliency weight {attacker}");
    }

    #[test]
    fn labels_distinguish_modes() {
        assert_eq!(
            SaliencyAggregator::default().into_pipeline().label(),
            "Saliency"
        );
        assert_eq!(
            SaliencyAggregator::new(AggregationMode::Literal)
                .into_pipeline()
                .label(),
            "Saliency(Literal)"
        );
    }
}
