//! The fused neural network (paper §IV.A, Fig. 3).
//!
//! One compact model with three parts sharing a bottleneck:
//!
//! ```text
//!             ┌────────────┐      ┌───────────────────┐
//!  x ───────▶ │  encoder   │─ z ─▶│ de-noising decoder│──▶ x̂ (reconstruction)
//!  (n_aps)    │ 128-89-62  │  │   │     89-n_aps      │
//!             └────────────┘  │   └───────────────────┘
//!                             │   ┌───────────────────┐
//!                             └──▶│  classifier head  │──▶ logits (n_rps)
//!                                 └───────────────────┘
//! ```
//!
//! The reconstruction error between `x` and `x̂` drives backdoor *detection*
//! (RCE > τ ⇒ flagged); flagged fingerprints are *de-noised* by re-encoding
//! their reconstruction and classifying the new latent vector. Following the
//! paper's "freeze the gradients from the encoder" note, reconstruction
//! gradients are stopped at the bottleneck by default, so the encoder is
//! shaped by the classification loss while the decoder learns to invert it.

use crate::config::RceMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeloc_attacks::GradientSource;
use safeloc_fl::client::PredictLabels;
use safeloc_nn::{
    gather_labels_into, gather_rows, gather_rows_into, shuffled_batches, Activation, Dense,
    HasParams, Init, Matrix, MseLoss, Optimizer, SparseCrossEntropyLoss, TrainConfig,
};
use serde::{Deserialize, Serialize};

/// Architecture description for a [`FusedNetwork`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedConfig {
    /// Input width (number of APs).
    pub input_dim: usize,
    /// Encoder widths; the last entry is the bottleneck (paper: 128-89-62).
    pub encoder_dims: Vec<usize>,
    /// Decoder hidden widths (paper: 89); the final reconstruction layer
    /// back to `input_dim` is appended automatically.
    pub decoder_hidden: Vec<usize>,
    /// Number of reference points (classifier width).
    pub n_classes: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl FusedConfig {
    /// The paper's architecture for a given input width and class count.
    pub fn paper(input_dim: usize, n_classes: usize, seed: u64) -> Self {
        Self {
            input_dim,
            encoder_dims: vec![128, 89, 62],
            decoder_hidden: vec![89],
            n_classes,
            seed,
        }
    }
}

/// The fused autoencoder + classifier model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedNetwork {
    enc: Vec<Dense>,
    dec: Vec<Dense>,
    cls: Dense,
}

/// Cached forward state for one batch.
///
/// Reusable: [`FusedNetwork::forward_trace_into`] reshapes the cached
/// matrices in place, so a trace that has seen a batch shape once never
/// allocates for it again.
#[derive(Debug, Clone, Default)]
pub struct FusedTrace {
    enc_in: Vec<Matrix>,
    enc_pre: Vec<Matrix>,
    /// Bottleneck activations.
    pub z: Matrix,
    dec_in: Vec<Matrix>,
    dec_pre: Vec<Matrix>,
    /// Reconstruction of the input.
    pub recon: Matrix,
    /// Classification logits.
    pub logits: Matrix,
}

/// Reusable scratch buffers for one fused-network training stream — the
/// `Workspace` pattern of `safeloc-nn`, extended to the two-headed model:
/// the forward trace, the flat gradient list, the two loss-head gradients
/// and the ping-pong matrices the joint backward pass streams through.
/// After one warmup step on a batch shape, a full
/// [`FusedNetwork::train_batch_weighted_with`] step performs **zero heap
/// allocations** — pinned by `crates/core/tests/alloc_free.rs`.
#[derive(Debug, Clone, Default)]
pub struct FusedWorkspace {
    trace: FusedTrace,
    /// Flat gradients in [`HasParams`] order (`enc0.w, enc0.b, …, dec…,
    /// cls.w, cls.b`).
    grads: Vec<Matrix>,
    /// `dL/d logits`.
    d_logits: Matrix,
    /// `recon_weight · dL/d recon`.
    d_recon: Matrix,
    /// Gradient flowing backwards through the current stack.
    grad_cur: Matrix,
    /// Scratch for the layer-below gradient; swapped with `grad_cur`.
    grad_next: Matrix,
    /// The classifier head's bottleneck gradient, merged with the
    /// decoder's at the bottleneck.
    dz_cls: Matrix,
}

impl FusedWorkspace {
    /// An empty workspace; buffers are shaped on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The forward trace of the last step.
    pub fn trace(&self) -> &FusedTrace {
        &self.trace
    }

    /// The flat gradient tensors produced by the last backward pass.
    pub fn gradients(&self) -> &[Matrix] {
        &self.grads
    }
}

/// Gradients for every tensor plus the input.
#[derive(Debug, Clone)]
pub struct FusedGrads {
    flat: Vec<Matrix>,
    /// `dL/dx`.
    pub input: Matrix,
}

impl FusedGrads {
    /// Gradients in [`HasParams`] tensor order.
    pub fn into_flat(self) -> Vec<Matrix> {
        self.flat
    }
}

/// Device-heterogeneity augmentation used during fused-network training:
/// per-row constant offset (a phone's calibration bias) plus per-element
/// Gaussian jitter (antenna/channel response), in normalized RSS units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaeAugment {
    /// Std-dev of the per-row constant offset.
    pub offset_std: f32,
    /// Std-dev of the per-element jitter.
    pub noise_std: f32,
}

impl DaeAugment {
    /// The default augmentation, matching the fleet's dB-domain spread.
    pub fn paper() -> Self {
        Self {
            offset_std: 0.08,
            noise_std: 0.04,
        }
    }

    /// Returns an augmented copy of `x`, clamped to `[0, 1]`.
    pub fn apply(&self, x: &Matrix, rng: &mut impl rand::Rng) -> Matrix {
        use rand_distr::{Distribution, Normal};
        let offset = Normal::new(0.0f32, self.offset_std.max(1e-9)).expect("finite std");
        let jitter = Normal::new(0.0f32, self.noise_std.max(1e-9)).expect("finite std");
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row_offset = offset.sample(rng);
            for v in out.row_mut(r) {
                // Unheard APs (exact zeros) stay unheard: device bias cannot
                // conjure signal out of the noise floor.
                if *v > 0.0 {
                    *v = (*v + row_offset + jitter.sample(rng)).clamp(0.0, 1.0);
                }
            }
        }
        out
    }
}

/// Detection-aware prediction output.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Predicted RP label per row.
    pub labels: Vec<usize>,
    /// Whether each row was flagged (RCE > τ) and de-noised.
    pub flagged: Vec<bool>,
    /// Per-row reconstruction error.
    pub rce: Vec<f32>,
}

impl FusedNetwork {
    /// Builds the network described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension list is empty or zero-width.
    pub fn new(cfg: &FusedConfig) -> Self {
        assert!(
            !cfg.encoder_dims.is_empty(),
            "encoder needs at least one layer"
        );
        assert!(
            cfg.input_dim > 0 && cfg.n_classes > 0,
            "degenerate dimensions"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut enc = Vec::with_capacity(cfg.encoder_dims.len());
        let mut prev = cfg.input_dim;
        for &d in &cfg.encoder_dims {
            assert!(d > 0, "zero-width encoder layer");
            enc.push(Dense::new(prev, d, Init::HeUniform, &mut rng));
            prev = d;
        }
        let bottleneck = prev;
        let mut dec = Vec::with_capacity(cfg.decoder_hidden.len() + 1);
        for &d in &cfg.decoder_hidden {
            assert!(d > 0, "zero-width decoder layer");
            dec.push(Dense::new(prev, d, Init::HeUniform, &mut rng));
            prev = d;
        }
        dec.push(Dense::new(prev, cfg.input_dim, Init::HeUniform, &mut rng));
        let cls = Dense::new(bottleneck, cfg.n_classes, Init::HeUniform, &mut rng);
        Self { enc, dec, cls }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.enc[0].in_dim()
    }

    /// Bottleneck width.
    pub fn bottleneck_dim(&self) -> usize {
        self.enc.last().expect("non-empty").out_dim()
    }

    /// Number of reference-point classes.
    pub fn n_classes(&self) -> usize {
        self.cls.out_dim()
    }

    /// Encodes a batch to bottleneck activations.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.enc {
            h = Activation::Relu.forward(&layer.forward(&h));
        }
        h
    }

    /// Decodes bottleneck activations to a reconstruction.
    pub fn decode(&self, z: &Matrix) -> Matrix {
        let mut h = z.clone();
        let last = self.dec.len() - 1;
        for (i, layer) in self.dec.iter().enumerate() {
            let pre = layer.forward(&h);
            h = if i == last {
                pre
            } else {
                Activation::Relu.forward(&pre)
            };
        }
        h
    }

    /// Classification logits from bottleneck activations.
    pub fn classify_latent(&self, z: &Matrix) -> Matrix {
        self.cls.forward(z)
    }

    /// Full forward pass with cached intermediates.
    pub fn forward_trace(&self, x: &Matrix) -> FusedTrace {
        let mut trace = FusedTrace::default();
        self.forward_trace_into(x, &mut trace);
        trace
    }

    /// Forward pass into a reusable trace (allocation-free once warm).
    pub fn forward_trace_into(&self, x: &Matrix, trace: &mut FusedTrace) {
        let ne = self.enc.len();
        let nd = self.dec.len();
        trace.enc_in.resize_with(ne, || Matrix::zeros(0, 0));
        trace.enc_pre.resize_with(ne, || Matrix::zeros(0, 0));
        trace.dec_in.resize_with(nd, || Matrix::zeros(0, 0));
        trace.dec_pre.resize_with(nd, || Matrix::zeros(0, 0));
        trace.enc_in[0].copy_from(x);
        for i in 0..ne {
            self.enc[i].forward_into(&trace.enc_in[i], &mut trace.enc_pre[i]);
            let post = if i + 1 < ne {
                &mut trace.enc_in[i + 1]
            } else {
                &mut trace.z
            };
            post.copy_from(&trace.enc_pre[i]);
            Activation::Relu.forward_assign(post);
        }
        trace.dec_in[0].copy_from(&trace.z);
        for i in 0..nd {
            self.dec[i].forward_into(&trace.dec_in[i], &mut trace.dec_pre[i]);
            if i + 1 < nd {
                trace.dec_in[i + 1].copy_from(&trace.dec_pre[i]);
                Activation::Relu.forward_assign(&mut trace.dec_in[i + 1]);
            } else {
                // Identity output activation on the reconstruction head.
                trace.recon.copy_from(&trace.dec_pre[i]);
            }
        }
        self.cls.forward_into(&trace.z, &mut trace.logits);
    }

    /// Plain classification (no detection): encode → classify → argmax.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.classify_latent(&self.encode(x)).argmax_rows()
    }

    /// Per-row reconstruction error under `mode`.
    pub fn rce(&self, x: &Matrix, mode: RceMode) -> Vec<f32> {
        let recon = self.decode(&self.encode(x));
        rce_rows(x, &recon, mode)
    }

    /// The paper's client-side inference (§IV.A): rows whose RCE ≤ τ are
    /// classified from their latent vector; rows above τ are de-noised —
    /// their *reconstruction* is re-encoded and that latent vector is
    /// classified instead.
    pub fn predict_with_detection(&self, x: &Matrix, tau: f32, mode: RceMode) -> DetectionOutcome {
        let z = self.encode(x);
        let recon = self.decode(&z);
        let rce = rce_rows(x, &recon, mode);
        let logits = self.classify_latent(&z);
        let mut labels = logits.argmax_rows();
        let flagged: Vec<bool> = rce.iter().map(|&r| r > tau).collect();
        let flagged_rows: Vec<usize> = flagged
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
            .collect();
        if !flagged_rows.is_empty() {
            let sub = gather_rows(&recon, &flagged_rows);
            let z2 = self.encode(&sub);
            let relabeled = self.classify_latent(&z2).argmax_rows();
            for (slot, &row) in flagged_rows.iter().enumerate() {
                labels[row] = relabeled[slot];
            }
        }
        DetectionOutcome {
            labels,
            flagged,
            rce,
        }
    }

    /// Replaces rows whose RCE exceeds τ with their reconstructions — the
    /// de-noising step applied to a client's local data before retraining.
    pub fn denoise_matrix(&self, x: &Matrix, tau: f32, mode: RceMode) -> (Matrix, Vec<bool>) {
        let recon = self.decode(&self.encode(x));
        let rce = rce_rows(x, &recon, mode);
        let mut out = x.clone();
        let mut flagged = vec![false; x.rows()];
        for (r, &err) in rce.iter().enumerate() {
            if err > tau {
                flagged[r] = true;
                let src = recon.row(r).to_vec();
                for (dst, v) in out.row_mut(r).iter_mut().zip(src) {
                    *dst = v.clamp(0.0, 1.0);
                }
            }
        }
        (out, flagged)
    }

    /// Backward pass. `d_logits` and `d_recon` are the loss gradients at the
    /// two heads (either may be `None`); with `detach_decoder` the
    /// reconstruction gradient stops at the bottleneck.
    pub fn backward(
        &self,
        trace: &FusedTrace,
        d_logits: Option<&Matrix>,
        d_recon: Option<&Matrix>,
        detach_decoder: bool,
    ) -> FusedGrads {
        let batch_z = &trace.z;
        // Classifier head.
        let (cls_gw, cls_gb, dz_cls) = match d_logits {
            Some(g) => {
                let grads = self.cls.backward(batch_z, g);
                (grads.w, grads.b, Some(grads.x))
            }
            None => (
                Matrix::zeros(self.cls.in_dim(), self.cls.out_dim()),
                Matrix::zeros(1, self.cls.out_dim()),
                None,
            ),
        };
        // Decoder stack.
        let mut dec_grads: Vec<(Matrix, Matrix)> = self
            .dec
            .iter()
            .map(|l| {
                (
                    Matrix::zeros(l.in_dim(), l.out_dim()),
                    Matrix::zeros(1, l.out_dim()),
                )
            })
            .collect();
        let mut dz_dec: Option<Matrix> = None;
        if let Some(g) = d_recon {
            let mut grad = g.clone();
            let last = self.dec.len() - 1;
            for i in (0..self.dec.len()).rev() {
                let grad_pre = if i == last {
                    grad.clone() // identity output activation
                } else {
                    Activation::Relu.backward(&trace.dec_pre[i], &grad)
                };
                let g = self.dec[i].backward(&trace.dec_in[i], &grad_pre);
                dec_grads[i] = (g.w, g.b);
                grad = g.x;
            }
            dz_dec = Some(grad);
        }
        // Combine bottleneck gradients.
        let mut dz = match (dz_cls, dz_dec) {
            (Some(a), Some(b)) if !detach_decoder => {
                let mut s = a;
                s.add_assign(&b);
                s
            }
            (Some(a), _) => a,
            (None, Some(b)) if !detach_decoder => b,
            _ => Matrix::zeros(batch_z.rows(), batch_z.cols()),
        };
        // Encoder stack.
        let mut enc_grads: Vec<(Matrix, Matrix)> = self
            .enc
            .iter()
            .map(|l| {
                (
                    Matrix::zeros(l.in_dim(), l.out_dim()),
                    Matrix::zeros(1, l.out_dim()),
                )
            })
            .collect();
        for i in (0..self.enc.len()).rev() {
            let grad_pre = Activation::Relu.backward(&trace.enc_pre[i], &dz);
            let g = self.enc[i].backward(&trace.enc_in[i], &grad_pre);
            enc_grads[i] = (g.w, g.b);
            dz = g.x;
        }
        let input = dz;

        let mut flat = Vec::with_capacity((self.enc.len() + self.dec.len() + 1) * 2);
        for (w, b) in enc_grads {
            flat.push(w);
            flat.push(b);
        }
        for (w, b) in dec_grads {
            flat.push(w);
            flat.push(b);
        }
        flat.push(cls_gw);
        flat.push(cls_gb);
        FusedGrads { flat, input }
    }

    /// One optimizer step on a batch with the joint loss
    /// `CE(logits, labels) + recon_weight · MSE(recon, x)`; returns
    /// `(ce, mse)`.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        detach_decoder: bool,
    ) -> (f32, f32) {
        self.train_batch_weighted(x, labels, opt, detach_decoder, 1.0)
    }

    /// [`FusedNetwork::train_batch`] with an explicit reconstruction-loss
    /// weight.
    ///
    /// Allocates a fresh [`FusedWorkspace`] per call; loops should hold one
    /// and use [`FusedNetwork::train_batch_weighted_with`].
    pub fn train_batch_weighted(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        detach_decoder: bool,
        recon_weight: f32,
    ) -> (f32, f32) {
        let mut ws = FusedWorkspace::new();
        self.train_batch_weighted_with(x, labels, opt, detach_decoder, recon_weight, &mut ws)
    }

    /// One optimizer step on a batch with the joint loss through a reusable
    /// workspace; returns `(ce, mse)`.
    ///
    /// Zero heap allocations once `ws` has seen the batch shape (the
    /// optimizer's state warms up on its first step the same way) —
    /// verified by `crates/core/tests/alloc_free.rs`.
    pub fn train_batch_weighted_with(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        detach_decoder: bool,
        recon_weight: f32,
        ws: &mut FusedWorkspace,
    ) -> (f32, f32) {
        self.forward_trace_into(x, &mut ws.trace);
        let ce =
            SparseCrossEntropyLoss.loss_and_grad_into(&ws.trace.logits, labels, &mut ws.d_logits);
        let mse = MseLoss.loss(&ws.trace.recon, x);
        MseLoss.grad_into(&ws.trace.recon, x, &mut ws.d_recon);
        ws.d_recon.scale_assign(recon_weight);
        self.backward_joint_with(ws, detach_decoder);
        opt.step_stream(self, &ws.grads);
        (ce, mse)
    }

    /// The joint backward pass through workspace buffers: on entry
    /// `ws.d_logits` / `ws.d_recon` hold the two head gradients for
    /// `ws.trace`; on exit `ws.grads` holds the flat parameter gradients in
    /// [`HasParams`] order. Training never needs `dL/dx`, so the encoder's
    /// layer-0 input gradient is skipped (the gradient-based attacks go
    /// through [`FusedNetwork::backward`], which still computes it).
    fn backward_joint_with(&self, ws: &mut FusedWorkspace, detach_decoder: bool) {
        let ne = self.enc.len();
        let nd = self.dec.len();
        let FusedWorkspace {
            trace,
            grads,
            d_logits,
            d_recon,
            grad_cur,
            grad_next,
            dz_cls,
        } = ws;
        grads.resize_with((ne + nd + 1) * 2, || Matrix::zeros(0, 0));

        // Classifier head: parameter gradients plus its bottleneck
        // gradient.
        {
            let (dw_part, db_part) = grads.split_at_mut(2 * (ne + nd) + 1);
            self.cls.backward_into(
                &trace.z,
                d_logits,
                &mut dw_part[2 * (ne + nd)],
                &mut db_part[0],
                dz_cls,
            );
        }

        // Decoder stack, from the reconstruction head down to the
        // bottleneck.
        grad_cur.copy_from(d_recon);
        let last = nd - 1;
        for i in (0..nd).rev() {
            if i != last {
                Activation::Relu.backward_assign(&trace.dec_pre[i], grad_cur);
            }
            let (dw_part, db_part) = grads.split_at_mut(2 * (ne + i) + 1);
            if i == 0 && detach_decoder {
                // The decoder's bottleneck gradient is about to be
                // discarded — skip the widest backward matmul.
                self.dec[0].param_grads_into(
                    &trace.dec_in[0],
                    grad_cur,
                    &mut dw_part[2 * ne],
                    &mut db_part[0],
                );
            } else {
                self.dec[i].backward_into(
                    &trace.dec_in[i],
                    grad_cur,
                    &mut dw_part[2 * (ne + i)],
                    &mut db_part[0],
                    grad_next,
                );
                std::mem::swap(grad_cur, grad_next);
            }
        }

        // Combine the two bottleneck gradients ("freeze the gradients from
        // the encoder": detached mode drops the decoder's).
        if detach_decoder {
            grad_cur.copy_from(dz_cls);
        } else {
            grad_cur.add_assign(dz_cls);
        }

        // Encoder stack; layer 0 stops at its parameter gradients.
        for i in (0..ne).rev() {
            Activation::Relu.backward_assign(&trace.enc_pre[i], grad_cur);
            let (dw_part, db_part) = grads.split_at_mut(2 * i + 1);
            if i == 0 {
                self.enc[0].param_grads_into(
                    &trace.enc_in[0],
                    grad_cur,
                    &mut dw_part[0],
                    &mut db_part[0],
                );
            } else {
                self.enc[i].backward_into(
                    &trace.enc_in[i],
                    grad_cur,
                    &mut dw_part[2 * i],
                    &mut db_part[0],
                    grad_next,
                );
                std::mem::swap(grad_cur, grad_next);
            }
        }
    }

    /// Joint training loop; returns `(mean_ce, mean_mse)` per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn fit(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        cfg: &TrainConfig,
        detach_decoder: bool,
    ) -> Vec<(f32, f32)> {
        self.fit_weighted(x, labels, opt, cfg, detach_decoder, 1.0)
    }

    /// [`FusedNetwork::fit`] with an explicit reconstruction-loss weight.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn fit_weighted(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        cfg: &TrainConfig,
        detach_decoder: bool,
        recon_weight: f32,
    ) -> Vec<(f32, f32)> {
        self.fit_augmented(x, labels, opt, cfg, detach_decoder, recon_weight, None)
    }

    /// Full training loop with optional device-heterogeneity augmentation.
    ///
    /// With `augment`, a fraction of batches are replaced by augmented
    /// copies (per-row dB-offset plus Gaussian jitter, i.e. the shape of
    /// real device variation), and the autoencoder reconstructs the
    /// *augmented* input. This widens the learned manifold so that clean
    /// data from unseen phones stays below the detection threshold —
    /// the tolerance the paper's τ = 0.1 "10% variance" expresses — while
    /// structured adversarial perturbations remain off-manifold.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_augmented(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        cfg: &TrainConfig,
        detach_decoder: bool,
        recon_weight: f32,
        augment: Option<&DaeAugment>,
    ) -> Vec<(f32, f32)> {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut ws = FusedWorkspace::new();
        let mut bx = Matrix::zeros(0, 0);
        let mut by = Vec::new();
        for _ in 0..cfg.epochs {
            let mut ce_sum = 0.0;
            let mut mse_sum = 0.0;
            let mut batches = 0;
            for batch in shuffled_batches(x.rows(), cfg.batch_size, &mut rng) {
                gather_rows_into(x, &batch, &mut bx);
                gather_labels_into(labels, &batch, &mut by);
                if let Some(a) = augment {
                    if rng.gen_bool(0.7) {
                        bx = a.apply(&bx, &mut rng);
                    }
                }
                let (ce, mse) = self.train_batch_weighted_with(
                    &bx,
                    &by,
                    opt,
                    detach_decoder,
                    recon_weight,
                    &mut ws,
                );
                ce_sum += ce;
                mse_sum += mse;
                batches += 1;
            }
            let denom = batches.max(1) as f32;
            history.push((ce_sum / denom, mse_sum / denom));
        }
        history
    }

    /// Classification accuracy (plain path).
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        self.predict(x)
            .iter()
            .zip(labels)
            .filter(|(p, y)| p == y)
            .count() as f32
            / labels.len() as f32
    }
}

/// Per-row reconstruction error.
fn rce_rows(x: &Matrix, recon: &Matrix, mode: RceMode) -> Vec<f32> {
    match mode {
        RceMode::MeanSquared => MseLoss.per_row(recon, x),
        RceMode::Relative => (0..x.rows())
            .map(|r| {
                let xr = x.row(r);
                let rr = recon.row(r);
                let num: f32 = xr
                    .iter()
                    .zip(rr)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                let den: f32 = xr.iter().map(|v| v * v).sum::<f32>().sqrt();
                num / (den + 1e-9)
            })
            .collect(),
    }
}

impl HasParams for FusedNetwork {
    fn param_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for i in 0..self.enc.len() {
            names.push(format!("enc{i}.w"));
            names.push(format!("enc{i}.b"));
        }
        for i in 0..self.dec.len() {
            names.push(format!("dec{i}.w"));
            names.push(format!("dec{i}.b"));
        }
        names.push("cls.w".to_string());
        names.push("cls.b".to_string());
        names
    }

    fn param_tensors(&self) -> Vec<&Matrix> {
        let mut out = Vec::new();
        for l in &self.enc {
            out.push(l.weights());
            out.push(l.bias());
        }
        for l in &self.dec {
            out.push(l.weights());
            out.push(l.bias());
        }
        out.push(self.cls.weights());
        out.push(self.cls.bias());
        out
    }

    fn param_tensors_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = Vec::new();
        for l in &mut self.enc {
            let (w, b) = l.parts_mut();
            out.push(w);
            out.push(b);
        }
        for l in &mut self.dec {
            let (w, b) = l.parts_mut();
            out.push(w);
            out.push(b);
        }
        let (w, b) = self.cls.parts_mut();
        out.push(w);
        out.push(b);
        out
    }

    fn visit_param_tensors_mut(&mut self, f: &mut dyn FnMut(&mut Matrix)) {
        for l in &mut self.enc {
            let (w, b) = l.parts_mut();
            f(w);
            f(b);
        }
        for l in &mut self.dec {
            let (w, b) = l.parts_mut();
            f(w);
            f(b);
        }
        let (w, b) = self.cls.parts_mut();
        f(w);
        f(b);
    }
}

impl PredictLabels for FusedNetwork {
    fn predict_labels(&self, x: &Matrix) -> Vec<usize> {
        self.predict(x)
    }
}

impl GradientSource for FusedNetwork {
    fn loss_input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        let trace = self.forward_trace(x);
        let d_logits = SparseCrossEntropyLoss.grad(&trace.logits, labels);
        self.backward(&trace, Some(&d_logits), None, true).input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::Adam;

    fn cfg() -> FusedConfig {
        FusedConfig {
            input_dim: 10,
            encoder_dims: vec![12, 6],
            decoder_hidden: vec![12],
            n_classes: 4,
            seed: 7,
        }
    }

    fn toy_data() -> (Matrix, Vec<usize>) {
        // Four well-separated prototypes + noise-free copies.
        let protos = [
            vec![0.9, 0.9, 0.1, 0.1, 0.5, 0.2, 0.8, 0.3, 0.1, 0.6],
            vec![0.1, 0.2, 0.9, 0.8, 0.1, 0.7, 0.2, 0.9, 0.4, 0.1],
            vec![0.5, 0.1, 0.4, 0.2, 0.9, 0.9, 0.1, 0.1, 0.8, 0.3],
            vec![0.2, 0.7, 0.2, 0.6, 0.3, 0.1, 0.5, 0.5, 0.2, 0.9],
        ];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for jitter in 0..6 {
                let row: Vec<f32> = p
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v + 0.01 * ((jitter + i) % 3) as f32).min(1.0))
                    .collect();
                rows.push(row);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn architecture_dimensions() {
        let net = FusedNetwork::new(&cfg());
        assert_eq!(net.input_dim(), 10);
        assert_eq!(net.bottleneck_dim(), 6);
        assert_eq!(net.n_classes(), 4);
        // enc: 10*12+12 + 12*6+6 = 132+12+72+6 = 210
        // dec: 6*12+12 + 12*10+10 = 84+130 = 214 ... compute precisely below
        let expect = (10 * 12 + 12) + (12 * 6 + 6) + (6 * 12 + 12) + (12 * 10 + 10) + (6 * 4 + 4);
        assert_eq!(net.num_params(), expect);
    }

    #[test]
    fn paper_architecture_matches_section_v() {
        let c = FusedConfig::paper(203, 60, 0);
        let net = FusedNetwork::new(&c);
        assert_eq!(net.bottleneck_dim(), 62);
        // encoder 203-128-89-62, decoder 62-89-203, classifier 62-60.
        let expect = (203 * 128 + 128)
            + (128 * 89 + 89)
            + (89 * 62 + 62)
            + (62 * 89 + 89)
            + (89 * 203 + 203)
            + (62 * 60 + 60);
        assert_eq!(net.num_params(), expect);
    }

    #[test]
    fn forward_shapes() {
        let net = FusedNetwork::new(&cfg());
        let x = Matrix::zeros(3, 10);
        let t = net.forward_trace(&x);
        assert_eq!(t.z.shape(), (3, 6));
        assert_eq!(t.recon.shape(), (3, 10));
        assert_eq!(t.logits.shape(), (3, 4));
    }

    #[test]
    fn joint_training_learns_both_heads() {
        let (x, y) = toy_data();
        let mut net = FusedNetwork::new(&cfg());
        let mut opt = Adam::new(5e-3);
        let hist = net.fit(&x, &y, &mut opt, &TrainConfig::new(300, 0, 1), true);
        let (ce0, mse0) = hist[0];
        let (ce1, mse1) = *hist.last().unwrap();
        assert!(ce1 < ce0 * 0.5, "CE did not drop: {ce0} -> {ce1}");
        assert!(mse1 < mse0 * 0.5, "MSE did not drop: {mse0} -> {mse1}");
        assert!(net.accuracy(&x, &y) > 0.9, "acc {}", net.accuracy(&x, &y));
        // Clean data reconstructs well.
        let rce = net.rce(&x, RceMode::Relative);
        let mean: f32 = rce.iter().sum::<f32>() / rce.len() as f32;
        assert!(mean < 0.2, "clean relative RCE too high: {mean}");
    }

    #[test]
    fn weight_gradients_match_finite_differences_joint() {
        let net = FusedNetwork::new(&cfg());
        let x = Matrix::from_rows(&[vec![0.3; 10], vec![0.7; 10]]);
        let y = [1usize, 2];
        let loss = |n: &FusedNetwork| {
            let t = n.forward_trace(&x);
            SparseCrossEntropyLoss.loss(&t.logits, &y) + MseLoss.loss(&t.recon, &x)
        };
        let trace = net.forward_trace(&x);
        let d_logits = SparseCrossEntropyLoss.grad(&trace.logits, &y);
        let d_recon = MseLoss.grad(&trace.recon, &x);
        let grads = net
            .backward(&trace, Some(&d_logits), Some(&d_recon), false)
            .into_flat();
        let h = 1e-3;
        let names = net.param_names();
        for (ti, tensor) in net.param_tensors().iter().enumerate() {
            let probes = [(0usize, 0usize), (tensor.rows() - 1, tensor.cols() - 1)];
            for &(r, c) in &probes {
                let mut np = net.clone();
                let mut nm = net.clone();
                {
                    let t = &mut np.param_tensors_mut()[ti];
                    let v = t.get(r, c);
                    t.set(r, c, v + h);
                }
                {
                    let t = &mut nm.param_tensors_mut()[ti];
                    let v = t.get(r, c);
                    t.set(r, c, v - h);
                }
                let num = (loss(&np) - loss(&nm)) / (2.0 * h);
                let ana = grads[ti].get(r, c);
                assert!(
                    (num - ana).abs() < 5e-3,
                    "{} ({r},{c}): numeric {num} vs analytic {ana}",
                    names[ti]
                );
            }
        }
    }

    #[test]
    fn detached_mode_zeroes_encoder_recon_gradient() {
        let net = FusedNetwork::new(&cfg());
        let x = Matrix::from_rows(&[vec![0.4; 10]]);
        let trace = net.forward_trace(&x);
        let d_recon = MseLoss.grad(&trace.recon, &x.scale(0.5));
        // Reconstruction-only gradients, detached: encoder grads must be 0.
        let grads = net.backward(&trace, None, Some(&d_recon), true).into_flat();
        // First 4 tensors are the two encoder layers.
        for g in &grads[..4] {
            assert!(g.l2_norm() == 0.0, "encoder leaked recon gradient");
        }
        // Decoder tensors must be non-zero.
        assert!(grads[4].l2_norm() > 0.0);
        // Joint mode: encoder grads become non-zero.
        let joint = net
            .backward(&trace, None, Some(&d_recon), false)
            .into_flat();
        assert!(joint[0].l2_norm() > 0.0);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let net = FusedNetwork::new(&cfg());
        let x = Matrix::from_rows(&[vec![0.5, 0.2, 0.8, 0.1, 0.6, 0.3, 0.9, 0.4, 0.7, 0.2]]);
        let y = [2usize];
        let g = net.loss_input_gradient(&x, &y);
        let h = 1e-3;
        for c in [0usize, 4, 9] {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.set(0, c, x.get(0, c) + h);
            xm.set(0, c, x.get(0, c) - h);
            let lp = SparseCrossEntropyLoss.loss(&net.forward_trace(&xp).logits, &y);
            let lm = SparseCrossEntropyLoss.loss(&net.forward_trace(&xm).logits, &y);
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (num - g.get(0, c)).abs() < 1e-3,
                "col {c}: {num} vs {}",
                g.get(0, c)
            );
        }
    }

    #[test]
    fn detection_flags_perturbed_rows() {
        let (x, y) = toy_data();
        let mut net = FusedNetwork::new(&cfg());
        let mut opt = Adam::new(5e-3);
        net.fit(&x, &y, &mut opt, &TrainConfig::new(400, 0, 1), true);

        // Clean rows: RCE small. Perturbed rows: RCE larger.
        let clean_rce = net.rce(&x, RceMode::Relative);
        let clean_mean = clean_rce.iter().sum::<f32>() / clean_rce.len() as f32;
        let noisy = x.map(|v| (v + 0.35).min(1.0));
        let noisy_rce = net.rce(&noisy, RceMode::Relative);
        let noisy_mean = noisy_rce.iter().sum::<f32>() / noisy_rce.len() as f32;
        assert!(
            noisy_mean > clean_mean * 1.5,
            "detector blind: clean {clean_mean}, noisy {noisy_mean}"
        );

        // Threshold between the two means flags mostly noisy rows.
        let tau = (clean_mean + noisy_mean) / 2.0;
        let out = net.predict_with_detection(&noisy, tau, RceMode::Relative);
        let flags = out.flagged.iter().filter(|&&f| f).count();
        assert!(
            flags > noisy.rows() / 2,
            "only {flags}/{} noisy rows flagged",
            noisy.rows()
        );
        let clean_out = net.predict_with_detection(&x, tau, RceMode::Relative);
        let false_alarms = clean_out.flagged.iter().filter(|&&f| f).count();
        assert!(
            false_alarms < x.rows() / 4,
            "{false_alarms}/{} clean rows misflagged",
            x.rows()
        );
    }

    #[test]
    fn denoise_replaces_only_flagged_rows() {
        let (x, y) = toy_data();
        let mut net = FusedNetwork::new(&cfg());
        let mut opt = Adam::new(5e-3);
        net.fit(&x, &y, &mut opt, &TrainConfig::new(300, 0, 1), true);
        let mut mixed = x.clone();
        // Corrupt row 0 heavily.
        for c in 0..mixed.cols() {
            let v = mixed.get(0, c);
            mixed.set(0, c, (v + 0.5).min(1.0));
        }
        let rce = net.rce(&mixed, RceMode::Relative);
        let tau = (rce[0] + rce[1]) / 2.0; // between corrupted and clean
        let (den, flagged) = net.denoise_matrix(&mixed, tau, RceMode::Relative);
        assert!(flagged[0], "corrupted row not flagged");
        assert_ne!(den.row(0), mixed.row(0), "flagged row not replaced");
        for (r, &was_flagged) in flagged.iter().enumerate().skip(1) {
            if !was_flagged {
                assert_eq!(den.row(r), mixed.row(r), "clean row {r} was altered");
            }
        }
        assert!(den.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn snapshot_load_round_trip() {
        let net = FusedNetwork::new(&cfg());
        let snap = net.snapshot();
        assert_eq!(snap.num_params(), net.num_params());
        let mut other = FusedNetwork::new(&FusedConfig { seed: 99, ..cfg() });
        other.load(&snap).unwrap();
        let x = Matrix::from_rows(&[vec![0.3; 10]]);
        assert_eq!(net.forward_trace(&x).logits, other.forward_trace(&x).logits);
    }

    #[test]
    fn rce_modes_scale_differently() {
        let net = FusedNetwork::new(&cfg());
        let x = Matrix::from_rows(&[vec![0.5; 10]]);
        let rel = net.rce(&x, RceMode::Relative);
        let mse = net.rce(&x, RceMode::MeanSquared);
        assert_eq!(rel.len(), 1);
        assert_eq!(mse.len(), 1);
        assert!(rel[0] >= 0.0 && mse[0] >= 0.0);
    }

    #[test]
    fn predict_labels_trait_matches_plain_predict() {
        let net = FusedNetwork::new(&cfg());
        let x = Matrix::from_rows(&[vec![0.2; 10], vec![0.9; 10]]);
        assert_eq!(net.predict(&x), net.predict_labels(&x));
    }
}
