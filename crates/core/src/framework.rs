//! The end-to-end SAFELOC framework: fused network + RCE detection +
//! saliency-map aggregation, wired into the `safeloc-fl` engine.

use crate::config::SafeLocConfig;
use crate::detector::calibrate_tau;
use crate::fused::{FusedConfig, FusedNetwork};
use crate::saliency::SaliencyAggregator;
use rayon::prelude::*;
use safeloc_dataset::FingerprintSet;
use safeloc_fl::report::RoundTimer;
use safeloc_fl::{
    active_clients, Aggregator, Client, ClientUpdate, Framework, RoundPlan, RoundReport,
};
use safeloc_nn::{Adam, HasParams, Matrix, NamedParams, TrainConfig};

/// The SAFELOC framework (paper §IV).
///
/// Lifecycle (matching Fig. 2 and §IV):
///
/// 1. [`SafeLoc::pretrain`] — the fused network is trained on the server's
///    clean survey split with the joint CE + MSE loss.
/// 2. [`Framework::run_round`] — the GM is distributed to the round plan's
///    cohort; each participating client de-noises its local data through
///    the autoencoder (RCE > τ ⇒ replaced with its reconstruction,
///    neutralizing backdoor perturbations), retrains its LM for 5 epochs at
///    the reduced rate, and uploads it. The server runs its defense
///    pipeline — canonically the stage-less saliency composition
///    ([`SaliencyAggregator::into_pipeline`]), which suppresses the weight
///    deviations that label-flipped training produces; the returned
///    [`RoundReport`] records each update's mean
///    saliency as its acceptance weight. [`Framework::set_aggregator`]
///    swaps in any other composed pipeline (scenario-spec defense
///    ablations) without touching the client-side protocol.
/// 3. [`Framework::predict`] — detection-aware inference: flagged inputs
///    are classified from their re-encoded reconstruction.
#[derive(Clone)]
pub struct SafeLoc {
    net: FusedNetwork,
    /// The saliency configuration the default pipeline is built from
    /// (kept so sharpness/mode tweaks rebuild it).
    saliency: SaliencyAggregator,
    aggregator: Box<dyn Aggregator>,
    cfg: SafeLocConfig,
    /// p95 of the clean training data's RCE, calibrated at pretraining;
    /// τ is read relative to this baseline (`DESIGN.md` §5).
    rce_baseline: f32,
    rounds_run: usize,
}

impl std::fmt::Debug for SafeLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafeLoc")
            .field("params", &self.net.num_params())
            .field("tau", &self.cfg.tau)
            .field("aggregation", &self.aggregator.name().to_string())
            .field("rounds_run", &self.rounds_run)
            .finish()
    }
}

impl SafeLoc {
    /// Creates the framework for a building with `input_dim` visible APs and
    /// `n_classes` reference points.
    pub fn new(input_dim: usize, n_classes: usize, cfg: SafeLocConfig) -> Self {
        let net = FusedNetwork::new(&FusedConfig {
            input_dim,
            encoder_dims: cfg.encoder_dims.clone(),
            decoder_hidden: cfg.decoder_hidden.clone(),
            n_classes,
            seed: cfg.seed,
        });
        let saliency = SaliencyAggregator::new(cfg.aggregation);
        Self {
            net,
            saliency,
            aggregator: Box::new(saliency.into_pipeline()),
            cfg,
            rce_baseline: f32::INFINITY, // calibrated during pretrain
            rounds_run: 0,
        }
    }

    /// The detection threshold in raw RCE units:
    /// `baseline · (1 + τ)`.
    pub fn effective_threshold(&self) -> f32 {
        self.rce_baseline * (1.0 + self.cfg.tau)
    }

    /// The calibrated clean-data RCE baseline (p95 of the training split).
    pub fn rce_baseline(&self) -> f32 {
        self.rce_baseline
    }

    /// The deployed fused network.
    pub fn network(&self) -> &FusedNetwork {
        &self.net
    }

    /// The active reconstruction threshold τ.
    pub fn tau(&self) -> f32 {
        self.cfg.tau
    }

    /// Replaces τ (Fig. 4 sweeps this on a pretrained model).
    pub fn set_tau(&mut self, tau: f32) {
        self.cfg.tau = tau;
    }

    /// Overrides the saliency sharpness (0 makes S ≡ 1, i.e. plain delta
    /// averaging — the ablation's "no saliency" variant). Rebuilds the
    /// canonical saliency pipeline, replacing any pipeline previously
    /// installed through [`Framework::set_aggregator`].
    pub fn set_saliency_sharpness(&mut self, sharpness: f32) {
        self.saliency.sharpness = sharpness;
        self.aggregator = Box::new(self.saliency.into_pipeline());
    }

    /// The framework configuration.
    pub fn config(&self) -> &SafeLocConfig {
        &self.cfg
    }

    /// Collects one round of updates from the plan's participating clients
    /// (exposed for tests/ablations).
    ///
    /// Clients are independent — each de-noises and retrains its own clone
    /// of the fused GM — so the participating cohort runs in parallel.
    /// Per-client seed streams and order-preserving collection keep the
    /// round bitwise-identical across thread counts.
    pub fn collect_updates(&self, clients: &mut [Client], plan: &RoundPlan) -> Vec<ClientUpdate> {
        let n_classes = self.net.n_classes();
        let round_salt = (self.rounds_run as u64 + 1) << 16;
        // One snapshot shared across the fleet (the seed re-snapshotted the
        // full fused model once per client). The fields the fleet reads are
        // hoisted so the parallel closure does not capture `self` (whose
        // boxed defense pipeline is Send, not Sync — it is only ever run
        // from the server thread).
        let gm_snapshot = self.net.snapshot();
        let net = &self.net;
        let cfg = &self.cfg;
        let threshold = self.effective_threshold();
        active_clients(clients, plan)
            .into_par_iter()
            .map(|c| {
                // 1. A backdoor attacker perturbs the RSS feed before the
                //    pipeline sees it (Fig. 2).
                let base = c.base_labels(net, &cfg.local);
                let x = c.round_rss(net, &base, n_classes);
                // 2. Client-side poison detection + de-noising (§IV.A):
                //    rows whose RCE exceeds τ are replaced by their
                //    reconstructions, neutralizing the perturbation.
                let (den_x, _) = net.denoise_matrix(&x, threshold, cfg.rce_mode);
                // 3. Labeling per protocol — under self-training the labels
                //    come from the *de-noised* input, which is what defeats
                //    the backdoor payload.
                let labels = match cfg.local.labeling {
                    safeloc_fl::LabelingMode::SelfTrain => net.predict(&den_x),
                    safeloc_fl::LabelingMode::Surveyed => c.local.labels.clone(),
                };
                // 4. A label-flipping attacker corrupts the final labels —
                //    invisible to the client-side defense by construction.
                let labels = c.round_labels(labels, n_classes);
                // 5. Lightweight local retraining of the fused LM.
                let mut lm = net.clone();
                let mut opt = Adam::new(cfg.local.learning_rate);
                let n = den_x.rows();
                lm.fit_augmented(
                    &den_x,
                    &labels,
                    &mut opt,
                    &TrainConfig::new(cfg.local.epochs, cfg.local.batch_size, c.seed ^ round_salt),
                    cfg.detach_decoder,
                    cfg.recon_weight,
                    cfg.augment.as_ref(),
                );
                let params = c.finalize_params(&gm_snapshot, lm.snapshot());
                c.build_update(&gm_snapshot, params, n)
            })
            .collect()
    }
}

impl Framework for SafeLoc {
    fn name(&self) -> &'static str {
        "SAFELOC"
    }

    fn pretrain(&mut self, train: &FingerprintSet) {
        let mut opt = Adam::new(self.cfg.pretrain_lr);
        self.net.fit_augmented(
            &train.x,
            &train.labels,
            &mut opt,
            &TrainConfig::new(self.cfg.pretrain_epochs, self.cfg.batch_size, self.cfg.seed),
            self.cfg.detach_decoder,
            self.cfg.recon_weight,
            self.cfg.augment.as_ref(),
        );
        // Calibrate the clean-data baseline the τ tolerance is read against.
        // The server knows phones vary, so the baseline is measured on a
        // device-augmented replica of its survey split — otherwise clean
        // data from unseen phones would sit above any small τ.
        let calib_x = match &self.cfg.augment {
            Some(a) => {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(self.cfg.seed ^ 0xCA11B);
                a.apply(&train.x, &mut rng)
            }
            None => train.x.clone(),
        };
        self.rce_baseline = calibrate_tau(&self.net, &calib_x, self.cfg.rce_mode, 0.95, 1.0);
    }

    fn run_round(&mut self, clients: &mut [Client], plan: &RoundPlan) -> RoundReport {
        let timer = RoundTimer::start();
        let updates = self.collect_updates(clients, plan);
        let timer = timer.split();
        let outcome = self.aggregator.aggregate(&self.net.snapshot(), &updates);
        let stages = self.aggregator.take_stage_telemetry();
        self.net
            .load(&outcome.params)
            .expect("aggregation preserves architecture");
        let report = timer.finish(
            self.rounds_run,
            self.name(),
            clients,
            plan,
            &updates,
            &outcome,
            stages,
        );
        self.rounds_run += 1;
        report
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.net
            .predict_with_detection(x, self.effective_threshold(), self.cfg.rce_mode)
            .labels
    }

    fn num_params(&self) -> usize {
        self.net.num_params()
    }

    fn global_params(&self) -> NamedParams {
        self.net.snapshot()
    }

    fn clone_box(&self) -> Box<dyn Framework> {
        Box::new(self.clone())
    }

    fn set_aggregator(&mut self, aggregator: Box<dyn Aggregator>) -> Result<(), String> {
        // The client-side detector/de-noiser is untouched: only the
        // server-side combination rule is swapped, which is exactly the
        // ablation axis ("SAFELOC's pipeline with X instead of saliency").
        self.aggregator = aggregator;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_attacks::{Attack, PoisonInjector};
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};

    fn dataset() -> BuildingDataset {
        BuildingDataset::generate(Building::tiny(6), &DatasetConfig::tiny(), 6)
    }

    fn run_full_rounds(f: &mut SafeLoc, clients: &mut [Client], n: usize) {
        let plan = RoundPlan::full(clients.len());
        for _ in 0..n {
            f.run_round(clients, &plan);
        }
    }

    fn pretrained(data: &BuildingDataset) -> SafeLoc {
        let mut f = SafeLoc::new(
            data.building.num_aps(),
            data.building.num_rps(),
            SafeLocConfig::tiny(),
        );
        f.pretrain(&data.server_train);
        f
    }

    #[test]
    fn pretraining_learns_the_survey_split() {
        let data = dataset();
        let f = pretrained(&data);
        let acc = f
            .network()
            .accuracy(&data.server_train.x, &data.server_train.labels);
        assert!(acc > 0.8, "pretrain accuracy {acc}");
    }

    #[test]
    fn clean_rounds_preserve_accuracy() {
        let data = dataset();
        let mut f = pretrained(&data);
        let before = f.accuracy(&data.server_train.x, &data.server_train.labels);
        let mut clients = Client::from_dataset(&data, 0);
        run_full_rounds(&mut f, &mut clients, 3);
        let after = f.accuracy(&data.server_train.x, &data.server_train.labels);
        assert!(
            after > before - 0.25,
            "clean rounds collapsed accuracy {before} -> {after}"
        );
    }

    #[test]
    fn survives_full_label_flip_attacker() {
        let data = dataset();
        let mut f = pretrained(&data);
        let eval = &data.client_test[0];
        let before = f.accuracy(&eval.x, &eval.labels);
        let mut clients = Client::from_dataset(&data, 0);
        let last = clients.len() - 1;
        clients[last].injector = Some(PoisonInjector::new(Attack::label_flip(1.0), 5));
        run_full_rounds(&mut f, &mut clients, 4);
        let after = f.accuracy(&eval.x, &eval.labels);
        assert!(
            after > before - 0.3,
            "label-flip attacker broke SAFELOC: {before} -> {after}"
        );
    }

    #[test]
    fn survives_fgsm_attacker() {
        let data = dataset();
        let mut f = pretrained(&data);
        let eval = &data.client_test[0];
        let before = f.accuracy(&eval.x, &eval.labels);
        let mut clients = Client::from_dataset(&data, 0);
        let last = clients.len() - 1;
        clients[last].injector = Some(PoisonInjector::new(Attack::fgsm(0.5), 5));
        run_full_rounds(&mut f, &mut clients, 4);
        let after = f.accuracy(&eval.x, &eval.labels);
        assert!(
            after > before - 0.3,
            "FGSM attacker broke SAFELOC: {before} -> {after}"
        );
    }

    #[test]
    fn round_is_deterministic() {
        let data = dataset();
        let run = || {
            let mut f = pretrained(&data);
            let mut clients = Client::from_dataset(&data, 0);
            run_full_rounds(&mut f, &mut clients, 1);
            f.network().snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tau_is_adjustable() {
        let data = dataset();
        let mut f = pretrained(&data);
        f.set_tau(0.3);
        assert!((f.tau() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn debug_shows_configuration() {
        let data = dataset();
        let f = pretrained(&data);
        let s = format!("{f:?}");
        assert!(s.contains("tau"));
        assert!(s.contains("SafeLoc"));
    }
}
