//! SAFELOC hyperparameters.

use crate::saliency::AggregationMode;
use safeloc_fl::LocalTrainConfig;
use serde::{Deserialize, Serialize};

/// How the per-sample reconstruction error is computed.
///
/// See `DESIGN.md` §5: the paper sweeps τ over `[0, 0.5]` and calls τ = 0.1
/// "10% variance", which only types as a *relative* error; a raw MSE on
/// `[0,1]` inputs lives orders of magnitude lower. Relative mode is the
/// default; raw-MSE mode is kept for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RceMode {
    /// `‖x − x̂‖₂ / (‖x‖₂ + 1e-9)` — relative L2 reconstruction error.
    Relative,
    /// Per-row mean-squared error, as the raw text of §IV.A reads.
    MeanSquared,
}

/// Full SAFELOC configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafeLocConfig {
    /// Encoder widths after the input layer (paper: `[128, 89, 62]`; the
    /// last entry is the bottleneck).
    pub encoder_dims: Vec<usize>,
    /// Decoder hidden widths (paper: `[89]`; the reconstruction layer back
    /// to the input width is appended automatically).
    pub decoder_hidden: Vec<usize>,
    /// Reconstruction-error threshold τ (paper's optimum: 0.1), read as the
    /// *tolerated fractional increase* of a sample's reconstruction error
    /// over the clean-data baseline calibrated at pretraining — the paper's
    /// "allowing a 10% variance". A sample is flagged when
    /// `RCE > baseline · (1 + τ)`.
    pub tau: f32,
    /// RCE computation mode.
    pub rce_mode: RceMode,
    /// Saliency aggregation mode (Eq. 9 interpretation).
    pub aggregation: AggregationMode,
    /// Stop reconstruction gradients at the bottleneck so the encoder is
    /// trained by the classification loss only (§IV.A's "freeze the
    /// gradients from the encoder"). `false` trains jointly (ablation).
    pub detach_decoder: bool,
    /// Weight of the reconstruction (MSE) loss relative to the
    /// classification loss during training. Reconstruction quality bounds
    /// the de-noising path's accuracy, so it is trained harder.
    pub recon_weight: f32,
    /// Device-heterogeneity augmentation during training; `None` (the
    /// paper-faithful default) trains on the raw survey split. Enabling it
    /// is this repository's extension: clean cross-device error drops ~4×,
    /// at the cost of masking the de-noising path's contribution (the
    /// augment-hardened classifier resists the perturbations by itself).
    pub augment: Option<crate::fused::DaeAugment>,
    /// Server-side pretraining epochs (paper: 700).
    pub pretrain_epochs: usize,
    /// Server-side learning rate (paper: 1e-3).
    pub pretrain_lr: f32,
    /// Server-side batch size.
    pub batch_size: usize,
    /// Client-side protocol (paper: 5 epochs @ 1e-4).
    pub local: LocalTrainConfig,
    /// Master seed.
    pub seed: u64,
}

impl SafeLocConfig {
    /// The paper's configuration (§V.A).
    pub fn paper(seed: u64) -> Self {
        Self {
            encoder_dims: vec![128, 89, 62],
            decoder_hidden: vec![89],
            tau: 0.1,
            rce_mode: RceMode::Relative,
            aggregation: AggregationMode::Normalized,
            detach_decoder: true,
            recon_weight: 6.0,
            // The paper trains on the raw survey split. Heterogeneity
            // augmentation (DaeAugment) is this repository's optional
            // extension: it roughly quarters SAFELOC's clean error but also
            // hardens the classifier enough to mask the de-noising path's
            // contribution (see EXPERIMENTS.md, ablation).
            augment: None,
            pretrain_epochs: 700,
            pretrain_lr: 1e-3,
            batch_size: 32,
            local: LocalTrainConfig::paper(),
            seed,
        }
    }

    /// Scaled-down defaults that converge on the synthetic data (benches).
    /// Client learning rate is raised to 3e-3 to compress the paper's
    /// long-running deployment into 5 rounds (see `DESIGN.md` §5).
    pub fn default_scale(seed: u64) -> Self {
        Self {
            pretrain_epochs: 150,
            local: LocalTrainConfig {
                learning_rate: 3e-3,
                ..LocalTrainConfig::paper()
            },
            ..Self::paper(seed)
        }
    }

    /// Tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            encoder_dims: vec![24, 12],
            decoder_hidden: vec![24],
            tau: 0.1,
            rce_mode: RceMode::Relative,
            aggregation: AggregationMode::Normalized,
            detach_decoder: true,
            recon_weight: 4.0,
            augment: Some(crate::fused::DaeAugment::paper()),
            pretrain_epochs: 250,
            pretrain_lr: 1e-2,
            batch_size: 16,
            local: LocalTrainConfig {
                epochs: 2,
                learning_rate: 3e-4,
                batch_size: 8,
                ..LocalTrainConfig::default()
            },
            seed: 0,
        }
    }

    /// Replaces τ (used by the Fig. 4 sweep).
    pub fn with_tau(mut self, tau: f32) -> Self {
        self.tau = tau;
        self
    }

    /// Replaces the aggregation mode (used by the ablation bench).
    pub fn with_aggregation(mut self, mode: AggregationMode) -> Self {
        self.aggregation = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_v_a() {
        let c = SafeLocConfig::paper(0);
        assert_eq!(c.encoder_dims, vec![128, 89, 62]);
        assert_eq!(c.decoder_hidden, vec![89]);
        assert!((c.tau - 0.1).abs() < 1e-6);
        assert_eq!(c.pretrain_epochs, 700);
        assert!((c.pretrain_lr - 1e-3).abs() < 1e-9);
        assert_eq!(c.local.epochs, 5);
        assert!((c.local.learning_rate - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn builders_replace_fields() {
        let c = SafeLocConfig::tiny()
            .with_tau(0.3)
            .with_aggregation(AggregationMode::Literal);
        assert!((c.tau - 0.3).abs() < 1e-6);
        assert_eq!(c.aggregation, AggregationMode::Literal);
    }
}
