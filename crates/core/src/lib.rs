//! # SAFELOC
//!
//! Reproduction of *SAFELOC: Overcoming Data Poisoning Attacks in
//! Heterogeneous Federated Machine Learning for Indoor Localization*
//! (DATE 2025). This crate is the paper's contribution; the substrates live
//! in `safeloc-nn`, `safeloc-dataset`, `safeloc-attacks` and `safeloc-fl`.
//!
//! Two ideas make up the framework:
//!
//! 1. **A fused neural network** ([`FusedNetwork`]): one compact model whose
//!    shared encoder feeds both a de-noising decoder (poison *detection* via
//!    reconstruction error and poison *removal* via reconstruct-then-
//!    re-encode) and a classification head (localization over reference
//!    points). Backdoor-perturbed fingerprints reconstruct poorly — their
//!    reconstruction error (RCE) exceeds a threshold τ — and are replaced by
//!    their reconstructions before local training and inference (§IV.A).
//! 2. **Saliency-map aggregation** ([`SaliencyAggregator`]): at the server,
//!    each local model's weight tensors are compared to the global model's;
//!    elementwise saliency `S = 1/(1 + |ΔW|)` (Eqs. 6–7) down-weights
//!    heavily-deviating tensors — the signature of label-flipped training —
//!    before aggregation (Eqs. 8–9, §IV.B).
//!
//! [`SafeLoc`] wires both into the `safeloc-fl` engine as a
//! [`Framework`](safeloc_fl::Framework).
//!
//! # Example
//!
//! ```
//! use safeloc::{SafeLoc, SafeLocConfig};
//! use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
//! use safeloc_fl::{Client, Framework, RoundPlan};
//!
//! let data = BuildingDataset::generate(Building::tiny(1), &DatasetConfig::tiny(), 1);
//! let mut framework = SafeLoc::new(
//!     data.building.num_aps(),
//!     data.building.num_rps(),
//!     SafeLocConfig::tiny(),
//! );
//! framework.pretrain(&data.server_train);
//! let mut clients = Client::from_dataset(&data, 1);
//! let plan = RoundPlan::full(clients.len());
//! let report = framework.run_round(&mut clients, &plan);
//! assert_eq!(report.accepted(), report.clients.len());
//! let test = &data.client_test[0];
//! assert!(framework.accuracy(&test.x, &test.labels) > 0.2);
//! ```

pub mod config;
pub mod detector;
pub mod framework;
pub mod fused;
pub mod saliency;

pub use config::{RceMode, SafeLocConfig};
pub use detector::{calibrate_tau, DetectionReport};
pub use framework::SafeLoc;
pub use fused::{DaeAugment, FusedConfig, FusedNetwork, FusedTrace, FusedWorkspace};
pub use saliency::{saliency_matrix, AggregationMode, SaliencyAggregator};
