//! Reconstruction-error threshold calibration and detection reporting.

use crate::config::RceMode;
use crate::fused::FusedNetwork;
use safeloc_nn::Matrix;
use serde::{Deserialize, Serialize};

/// Summary of a detection pass over a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Threshold used.
    pub tau: f32,
    /// Rows flagged as poisoned.
    pub flagged: usize,
    /// Total rows inspected.
    pub total: usize,
    /// Mean RCE over the batch.
    pub mean_rce: f32,
    /// Maximum RCE over the batch.
    pub max_rce: f32,
}

impl DetectionReport {
    /// Builds a report from per-row RCE values and a threshold.
    pub fn from_rce(rce: &[f32], tau: f32) -> Self {
        let flagged = rce.iter().filter(|&&r| r > tau).count();
        let mean = if rce.is_empty() {
            0.0
        } else {
            rce.iter().sum::<f32>() / rce.len() as f32
        };
        Self {
            tau,
            flagged,
            total: rce.len(),
            mean_rce: mean,
            max_rce: rce.iter().cloned().fold(0.0, f32::max),
        }
    }

    /// Fraction of rows flagged.
    pub fn flag_rate(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.flagged as f32 / self.total as f32
        }
    }
}

/// Calibrates τ from *clean* training data: the `quantile` of the clean RCE
/// distribution times a safety `margin`.
///
/// The paper fixes τ = 0.1 after the Fig. 4 sweep; this helper reproduces
/// how such a threshold is derived from data (the server holds the clean
/// survey split, so it can measure the clean RCE distribution directly).
///
/// # Panics
///
/// Panics if `x` has no rows.
pub fn calibrate_tau(
    net: &FusedNetwork,
    x: &Matrix,
    mode: RceMode,
    quantile: f32,
    margin: f32,
) -> f32 {
    assert!(x.rows() > 0, "cannot calibrate on an empty batch");
    let mut rce = net.rce(x, mode);
    rce.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((quantile.clamp(0.0, 1.0)) * (rce.len() - 1) as f32).round() as usize;
    rce[idx] * margin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::FusedConfig;
    use safeloc_nn::{Adam, TrainConfig};

    fn trained_net() -> (FusedNetwork, Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for j in 0..8usize {
                let row: Vec<f32> = (0..8)
                    .map(|i| {
                        let base = ((c * 3 + i) % 5) as f32 / 5.0;
                        (base + 0.02 * (j % 3) as f32).min(1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut net = FusedNetwork::new(&FusedConfig {
            input_dim: 8,
            encoder_dims: vec![10, 5],
            decoder_hidden: vec![10],
            n_classes: 3,
            seed: 3,
        });
        let mut opt = Adam::new(5e-3);
        net.fit(&x, &labels, &mut opt, &TrainConfig::new(300, 0, 3), true);
        (net, x, labels)
    }

    #[test]
    fn report_counts_flags() {
        let r = DetectionReport::from_rce(&[0.05, 0.2, 0.15, 0.01], 0.1);
        assert_eq!(r.flagged, 2);
        assert_eq!(r.total, 4);
        assert!((r.flag_rate() - 0.5).abs() < 1e-6);
        assert!((r.max_rce - 0.2).abs() < 1e-6);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = DetectionReport::from_rce(&[], 0.1);
        assert_eq!(r.flag_rate(), 0.0);
        assert_eq!(r.total, 0);
    }

    #[test]
    fn calibrated_tau_accepts_clean_data() {
        let (net, x, _) = trained_net();
        let tau = calibrate_tau(&net, &x, RceMode::Relative, 0.95, 1.2);
        let report = DetectionReport::from_rce(&net.rce(&x, RceMode::Relative), tau);
        assert!(
            report.flag_rate() < 0.1,
            "calibrated tau flags clean data: {}",
            report.flag_rate()
        );
    }

    #[test]
    fn calibrated_tau_catches_gross_perturbations() {
        let (net, x, _) = trained_net();
        let tau = calibrate_tau(&net, &x, RceMode::Relative, 0.95, 1.2);
        let poisoned = x.map(|v| (v + 0.4).min(1.0));
        let report = DetectionReport::from_rce(&net.rce(&poisoned, RceMode::Relative), tau);
        assert!(
            report.flag_rate() > 0.5,
            "calibrated tau missed perturbations: {}",
            report.flag_rate()
        );
    }

    #[test]
    fn higher_quantile_gives_looser_tau() {
        let (net, x, _) = trained_net();
        let tight = calibrate_tau(&net, &x, RceMode::Relative, 0.5, 1.0);
        let loose = calibrate_tau(&net, &x, RceMode::Relative, 1.0, 1.0);
        assert!(loose >= tight);
    }
}
