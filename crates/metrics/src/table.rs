//! Plain-text table rendering for the bench binaries.
//!
//! The harness prints the same rows/series the paper's figures show;
//! everything renders as GitHub-flavoured markdown so the output can be
//! pasted straight into `EXPERIMENTS.md`.

/// Renders a markdown table from a header and rows of cells.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a named numeric series as a two-column markdown table.
pub fn series_table(x_name: &str, y_name: &str, points: &[(f32, f32)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![format!("{x:.3}"), format!("{y:.3}")])
        .collect();
    markdown_table(&[x_name, y_name], &rows)
}

/// Renders a heatmap (Fig. 5 style): one row label per row, one column
/// label per column, `values[r][c]` formatted to two decimals.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn heatmap(
    corner: &str,
    col_labels: &[String],
    row_labels: &[String],
    values: &[Vec<f32>],
) -> String {
    assert_eq!(values.len(), row_labels.len(), "row count mismatch");
    let mut header: Vec<&str> = vec![corner];
    header.extend(col_labels.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .zip(values)
        .map(|(label, row)| {
            assert_eq!(row.len(), col_labels.len(), "column count mismatch");
            let mut cells = vec![label.clone()];
            cells.extend(row.iter().map(|v| format!("{v:.2}")));
            cells
        })
        .collect();
    markdown_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let out = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a | b |"));
        assert!(lines[1].starts_with("|---|"));
        assert!(lines[3].contains("| 3 | 4 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_validates_rows() {
        let _ = markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_formats_points() {
        let out = series_table("tau", "error", &[(0.1, 1.5), (0.2, 2.0)]);
        assert!(out.contains("| 0.100 | 1.500 |"));
        assert!(out.contains("| tau | error |"));
    }

    #[test]
    fn heatmap_layout() {
        let out = heatmap(
            "attack \\ eps",
            &["0.1".into(), "0.5".into()],
            &["FGSM".into()],
            &[vec![1.25, 3.5]],
        );
        assert!(out.contains("| FGSM | 1.25 | 3.50 |"));
        assert!(out.contains("attack \\ eps"));
    }
}
