//! Summary statistics in the shape of the paper's box-and-whisker plots.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error summary: the paper's plots show best-case (lower whisker),
/// mean (center bar) and worst-case (upper whisker) localization errors;
/// percentiles are included for finer-grained comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Sample count.
    pub n: usize,
    /// Best case (minimum).
    pub best: f32,
    /// Arithmetic mean.
    pub mean: f32,
    /// Worst case (maximum).
    pub worst: f32,
    /// Median.
    pub p50: f32,
    /// 95th percentile.
    pub p95: f32,
    /// Standard deviation.
    pub std: f32,
}

impl ErrorStats {
    /// Computes the summary of a non-empty error sample.
    ///
    /// Returns an all-zero summary for an empty slice (a framework that was
    /// never evaluated reports zeros rather than NaNs).
    pub fn from_errors(errors: &[f32]) -> Self {
        if errors.is_empty() {
            return Self {
                n: 0,
                best: 0.0,
                mean: 0.0,
                worst: 0.0,
                p50: 0.0,
                p95: 0.0,
                std: 0.0,
            };
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f32>() / n as f32;
        let var = sorted.iter().map(|e| (e - mean) * (e - mean)).sum::<f32>() / n as f32;
        Self {
            n,
            best: sorted[0],
            mean,
            worst: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            std: var.sqrt(),
        }
    }

    /// Merges several stats by pooling their underlying counts (exact for
    /// mean/best/worst; percentiles are approximated by the weighted mean).
    pub fn pool(stats: &[ErrorStats]) -> ErrorStats {
        let total: usize = stats.iter().map(|s| s.n).sum();
        if total == 0 {
            return ErrorStats::from_errors(&[]);
        }
        let wmean = |f: fn(&ErrorStats) -> f32| -> f32 {
            stats.iter().map(|s| f(s) * s.n as f32).sum::<f32>() / total as f32
        };
        ErrorStats {
            n: total,
            best: stats
                .iter()
                .filter(|s| s.n > 0)
                .map(|s| s.best)
                .fold(f32::INFINITY, f32::min),
            mean: wmean(|s| s.mean),
            worst: stats.iter().map(|s| s.worst).fold(0.0, f32::max),
            p50: wmean(|s| s.p50),
            p95: wmean(|s| s.p95),
            std: wmean(|s| s.std),
        }
    }
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} m (best {:.2}, worst {:.2}, p95 {:.2}, n={})",
            self.mean, self.best, self.worst, self.p95, self.n
        )
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
fn percentile(sorted: &[f32], q: f32) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = ErrorStats::from_errors(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.best, 0.0);
        assert_eq!(s.worst, 4.0);
        assert!((s.mean - 2.0).abs() < 1e-6);
        assert!((s.p50 - 2.0).abs() < 1e-6);
        assert!((s.std - 2.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn empty_sample_is_all_zero() {
        let s = ErrorStats::from_errors(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.worst, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = ErrorStats::from_errors(&[2.5]);
        assert_eq!(s.best, 2.5);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.worst, 2.5);
        assert_eq!(s.p95, 2.5);
    }

    #[test]
    fn order_invariance() {
        let a = ErrorStats::from_errors(&[3.0, 1.0, 2.0]);
        let b = ErrorStats::from_errors(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn p95_tracks_the_tail() {
        let mut errors = vec![1.0f32; 99];
        errors.push(100.0);
        let s = ErrorStats::from_errors(&errors);
        assert!(s.p95 < 50.0, "p95 dominated by single outlier");
        assert_eq!(s.worst, 100.0);
    }

    #[test]
    fn pooling_weights_by_count() {
        let a = ErrorStats::from_errors(&[1.0, 1.0, 1.0, 1.0]);
        let b = ErrorStats::from_errors(&[5.0]);
        let pooled = ErrorStats::pool(&[a, b]);
        assert_eq!(pooled.n, 5);
        assert!((pooled.mean - 1.8).abs() < 1e-5);
        assert_eq!(pooled.best, 1.0);
        assert_eq!(pooled.worst, 5.0);
    }

    #[test]
    fn pooling_nothing_is_zero() {
        let pooled = ErrorStats::pool(&[]);
        assert_eq!(pooled.n, 0);
    }

    #[test]
    fn display_mentions_mean_and_worst() {
        let s = ErrorStats::from_errors(&[1.0, 3.0]);
        let out = s.to_string();
        assert!(out.contains("mean 2.00"));
        assert!(out.contains("worst 3.00"));
    }
}
