//! Label predictions → localization errors in meters.

use safeloc_dataset::Building;

/// Per-sample localization error in meters: the distance between the
/// predicted RP's coordinates and the true RP's coordinates.
///
/// # Panics
///
/// Panics if the slices differ in length or any label is out of range for
/// `building`.
pub fn localization_errors(building: &Building, predicted: &[usize], truth: &[usize]) -> Vec<f32> {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "prediction/truth length mismatch"
    );
    predicted
        .iter()
        .zip(truth)
        .map(|(&p, &t)| building.label_error_m(p, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_predictions_have_zero_error() {
        let b = Building::tiny(0);
        let labels = vec![0, 3, 7];
        let errs = localization_errors(&b, &labels, &labels);
        assert!(errs.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn neighbouring_rp_costs_about_one_meter() {
        let b = Building::paper(1);
        // RPs 0 and 1 are adjacent on the 1 m path.
        let errs = localization_errors(&b, &[1], &[0]);
        assert!((errs[0] - 1.0).abs() < 0.01, "got {}", errs[0]);
    }

    #[test]
    fn distant_rp_costs_more() {
        let b = Building::paper(1);
        let near = localization_errors(&b, &[1], &[0])[0];
        let far = localization_errors(&b, &[59], &[0])[0];
        assert!(far > near * 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let b = Building::tiny(0);
        let _ = localization_errors(&b, &[0, 1], &[0]);
    }
}
