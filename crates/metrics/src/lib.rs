//! Localization-error metrics and report rendering for the SAFELOC
//! reproduction.
//!
//! Every figure in the paper reports *localization error in meters*: the
//! Euclidean distance between the predicted reference point and the true
//! one. This crate converts label predictions into those distances
//! ([`localization_errors`]), summarizes them the way the paper's
//! box-and-whisker plots do ([`ErrorStats`]: best / mean / worst plus
//! percentiles), and renders the tables and heatmaps the bench harness
//! prints ([`table`]).
//!
//! # Example
//!
//! ```
//! use safeloc_dataset::Building;
//! use safeloc_metrics::{localization_errors, ErrorStats};
//!
//! let b = Building::tiny(0);
//! let truth = vec![0, 1, 2];
//! let predicted = vec![0, 1, 3]; // one neighbouring-RP miss
//! let errors = localization_errors(&b, &predicted, &truth);
//! let stats = ErrorStats::from_errors(&errors);
//! assert_eq!(stats.best, 0.0);
//! assert!(stats.worst > 0.0);
//! ```

pub mod error;
pub mod stats;
pub mod table;

pub use error::localization_errors;
pub use stats::ErrorStats;
pub use table::{heatmap, markdown_table, series_table};
