//! Registry concurrency hammer: concurrent readers during rapid
//! publishes must observe monotonically nondecreasing versions, never a
//! torn snapshot, and served predictions that agree bitwise with offline
//! `predict` on the same snapshot.

use safeloc_nn::{Activation, HasParams, Matrix, Sequential};
use safeloc_serve::{ModelKey, ModelRegistry, ServedModel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DIMS: [usize; 3] = [6, 8, 4];

/// A network whose every weight is exactly `value` — any mix of two such
/// networks is detectable as a torn snapshot.
fn constant_net(value: f32) -> Sequential {
    let mut net = Sequential::mlp(&DIMS, Activation::Relu, 0);
    net.visit_param_tensors_mut(&mut |t: &mut Matrix| {
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                t.set(r, c, value);
            }
        }
    });
    net
}

fn assert_untorn(model: &ServedModel) {
    let expected = model.version as f32;
    for (name, tensor) in model.network.snapshot().iter() {
        for &w in tensor.as_slice() {
            assert_eq!(
                w, expected,
                "torn read: tensor {name} of version {} holds weight {w}",
                model.version
            );
        }
    }
}

#[test]
fn readers_never_observe_torn_or_regressing_snapshots() {
    let registry = Arc::new(ModelRegistry::new());
    let key = ModelKey::default_for(1);
    registry.publish(key.clone(), constant_net(1.0), None);

    const PUBLISHES: u64 = 300;
    let done = Arc::new(AtomicBool::new(false));
    let total_reads = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let readers = 4;

    std::thread::scope(|scope| {
        for _ in 0..readers {
            let registry = Arc::clone(&registry);
            let key = key.clone();
            let done = Arc::clone(&done);
            let total_reads = Arc::clone(&total_reads);
            scope.spawn(move || {
                let mut last_version = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let model = registry.get(&key).expect("always published");
                    assert!(
                        model.version >= last_version,
                        "version regressed: {} after {last_version}",
                        model.version
                    );
                    last_version = model.version;
                    assert_untorn(&model);
                    total_reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Publisher: rapid versioned swaps. Weights == version, so every
        // reader can verify internal consistency of what it resolved.
        // Yield between publishes so readers interleave even on one core.
        for v in 2..=PUBLISHES {
            let version = registry.publish(key.clone(), constant_net(v as f32), None);
            assert_eq!(version, v, "publisher saw a non-monotone version");
            std::thread::yield_now();
        }
        // Keep the final snapshot live until the readers demonstrably ran
        // concurrently with the publish storm (or clearly had the chance).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while total_reads.load(Ordering::Relaxed) < 64 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
        assert!(
            total_reads.load(Ordering::Relaxed) > 0,
            "no reader ever observed a snapshot"
        );
    });

    let final_model = registry.get(&key).expect("published");
    assert_eq!(final_model.version, PUBLISHES);
    assert_untorn(&final_model);
}

#[test]
fn resolved_snapshots_predict_bitwise_offline_while_publishes_race() {
    let registry = Arc::new(ModelRegistry::new());
    let key = ModelKey::default_for(2);
    registry.publish(
        key.clone(),
        Sequential::mlp(&DIMS, Activation::Relu, 0),
        None,
    );

    let x = Matrix::from_fn(16, DIMS[0], |r, c| ((r * 31 + c * 7) % 100) as f32 / 100.0);
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let registry = Arc::clone(&registry);
            let key = key.clone();
            let done = Arc::clone(&done);
            let x = &x;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    // Whatever snapshot a reader resolves, serving through
                    // it must equal offline predict on that same network —
                    // the snapshot cannot change under the reader's feet.
                    let model = registry.get(&key).expect("published");
                    let served = model.predict(x);
                    let offline = model.network.predict(x);
                    assert_eq!(served, offline, "version {}", model.version);
                }
            });
        }
        for seed in 1..=120u64 {
            registry.publish(
                key.clone(),
                Sequential::mlp(&DIMS, Activation::Relu, seed),
                None,
            );
        }
        done.store(true, Ordering::Relaxed);
    });
}
