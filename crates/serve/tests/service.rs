//! End-to-end service tests pinning the ISSUE's acceptance criteria:
//! served predictions are bitwise identical to offline `predict` on the
//! same snapshot under any batching/deadline schedule and thread count,
//! and a mid-traffic hot swap completes in-flight requests on the old
//! version while subsequent requests observe the new one.

use rayon::ThreadPoolBuilder;
use safeloc_dataset::{
    dbm_to_unit, unit_to_dbm, Building, BuildingDataset, DatasetConfig, DeviceCatalog,
};
use safeloc_nn::{Activation, Matrix, Sequential};
use safeloc_serve::{
    request_pool, LocalizeRequest, ModelKey, ModelRegistry, ServeConfig, Service, DEFAULT_CLASS,
};
use std::sync::Arc;
use std::time::Duration;

fn tiny_data(seed: u64) -> BuildingDataset {
    BuildingDataset::generate(Building::tiny(seed), &DatasetConfig::tiny(), seed)
}

/// The offline reference: the exact features the front computes, run
/// through the model's own batch-predict path in one shot.
fn offline_predict(model: &Sequential, requests: &[LocalizeRequest]) -> Vec<usize> {
    let cols = model.in_dim();
    let mut rows = Vec::with_capacity(requests.len() * cols);
    for r in requests {
        rows.extend(r.rss_dbm.iter().map(|&dbm| dbm_to_unit(dbm)));
    }
    model.predict(&Matrix::from_vec(requests.len(), cols, rows).expect("aligned rows"))
}

#[test]
fn served_predictions_are_bitwise_offline_predictions_under_any_schedule() {
    let data = tiny_data(11);
    let network = Sequential::mlp(
        &[data.building.num_aps(), 24, data.building.num_rps()],
        Activation::Relu,
        5,
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(
        ModelKey::default_for(data.building.id),
        network.clone(),
        Some(data.building.clone()),
    );
    let requests = request_pool(&data);
    assert!(requests.len() > 10, "pool too small to exercise batching");

    // Offline reference, additionally pinned across thread counts: the
    // batch-predict hot path must not depend on parallelism.
    let offline = offline_predict(&network, &requests);
    for threads in [1, 2, 8] {
        let pinned = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| offline_predict(&network, &requests));
        assert_eq!(
            pinned, offline,
            "offline predict varies at {threads} threads"
        );
    }

    // Every batching/deadline/worker schedule must reproduce it bitwise.
    let schedules = [
        (1, Duration::ZERO, 1),                    // no coalescing at all
        (32, Duration::from_millis(5), 1),         // full batches, one worker
        (7, Duration::from_micros(300), 3),        // ragged batches, racing workers
        (usize::MAX, Duration::from_millis(2), 2), // deadline-bounded only
    ];
    for (max_batch, batch_deadline, workers) in schedules {
        let service = Service::start(
            Arc::clone(&registry),
            DeviceCatalog::new(data.devices.clone()),
            ServeConfig {
                max_batch,
                batch_deadline,
                workers,
            },
        );
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r).expect("admitted"))
            .collect();
        let served: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.wait().expect("served").label)
            .collect();
        assert_eq!(
            served, offline,
            "served != offline for schedule (batch={max_batch}, \
             deadline={batch_deadline:?}, workers={workers})"
        );
        service.shutdown();
    }
}

#[test]
fn mixed_device_traffic_routes_each_request_to_its_variant() {
    let data = tiny_data(21);
    let registry = Arc::new(ModelRegistry::new());
    let default_net = Sequential::mlp(
        &[data.building.num_aps(), 16, data.building.num_rps()],
        Activation::Relu,
        1,
    );
    let variant_net = Sequential::mlp(
        &[data.building.num_aps(), 16, data.building.num_rps()],
        Activation::Relu,
        2,
    );
    let variant_device = data.devices[1].name.clone();
    registry.publish(
        ModelKey::default_for(data.building.id),
        default_net.clone(),
        None,
    );
    registry.publish(
        ModelKey::new(data.building.id, &variant_device),
        variant_net.clone(),
        None,
    );

    let service = Service::start(
        Arc::clone(&registry),
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 16,
            batch_deadline: Duration::from_millis(2),
            workers: 2,
        },
    );

    // Interleave variant-device and other-device requests so single
    // micro-batches mix both models.
    let requests: Vec<LocalizeRequest> = data.client_test[0]
        .x
        .iter_rows()
        .enumerate()
        .map(|(i, row)| {
            let device = if i % 2 == 0 {
                variant_device.clone()
            } else {
                data.devices[0].name.clone()
            };
            LocalizeRequest::new(
                data.building.id,
                &device,
                row.iter().map(|&u| unit_to_dbm(u)).collect(),
            )
        })
        .collect();

    let tickets: Vec<_> = requests
        .iter()
        .map(|r| service.submit(r).expect("admitted"))
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("served"))
        .collect();

    for (i, (request, response)) in requests.iter().zip(&responses).enumerate() {
        let (expected_model, expected_class) = if i % 2 == 0 {
            (&variant_net, variant_device.as_str())
        } else {
            (&default_net, DEFAULT_CLASS)
        };
        assert_eq!(response.device_class, expected_class, "request {i}");
        let offline = offline_predict(expected_model, std::slice::from_ref(request));
        assert_eq!(response.label, offline[0], "request {i} label");
    }
    service.shutdown();
}

#[test]
fn mid_traffic_hot_swap_is_clean() {
    let data = tiny_data(31);
    let dims = [data.building.num_aps(), 16, data.building.num_rps()];
    let v1 = Sequential::mlp(&dims, Activation::Relu, 100);
    let v2 = Sequential::mlp(&dims, Activation::Relu, 200);
    let registry = Arc::new(ModelRegistry::new());
    let key = ModelKey::default_for(data.building.id);
    registry.publish(key.clone(), v1.clone(), None);

    // One worker with a generous deadline: the pre-swap submissions are
    // still in flight (queued or coalescing) when the publish lands.
    let service = Service::start(
        Arc::clone(&registry),
        DeviceCatalog::new(data.devices.clone()),
        ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(20),
            workers: 1,
        },
    );
    let pool = request_pool(&data);

    let before: Vec<_> = pool[..12]
        .iter()
        .map(|r| service.submit(r).expect("admitted"))
        .collect();
    let new_version = registry.publish(key.clone(), v2.clone(), None);
    assert_eq!(new_version, 2);
    let after: Vec<_> = pool[12..24]
        .iter()
        .map(|r| service.submit(r).expect("admitted"))
        .collect();

    // In-flight requests complete on the version they were admitted
    // under, bitwise against that snapshot...
    let offline_v1 = offline_predict(&v1, &pool[..12]);
    for (i, ticket) in before.into_iter().enumerate() {
        let response = ticket.wait().expect("served");
        assert_eq!(response.model_version, 1, "pre-swap request {i}");
        assert_eq!(response.label, offline_v1[i], "pre-swap request {i}");
    }
    // ...and every subsequent request observes the new version.
    let offline_v2 = offline_predict(&v2, &pool[12..24]);
    for (i, ticket) in after.into_iter().enumerate() {
        let response = ticket.wait().expect("served");
        assert_eq!(response.model_version, 2, "post-swap request {i}");
        assert_eq!(response.label, offline_v2[i], "post-swap request {i}");
    }
    service.shutdown();
}
