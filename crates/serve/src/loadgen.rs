//! Closed-loop synthetic load generation against a running [`Service`].
//!
//! The generator models a population of phones in the closed-loop shape:
//! each client thread submits one request, blocks for the response,
//! records the latency and immediately submits the next — so offered load
//! adapts to service capacity instead of overrunning it, and the latency
//! distribution is the one a phone would actually see. Requests are drawn
//! from a prototype pool (typically built from held-out fingerprints via
//! [`request_pool`]) by seeded per-client RNG streams, which fixes the
//! arrival *mix* across buildings and devices deterministically even
//! though wall-clock timings vary run to run.

use crate::front::{LocalizeRequest, LocalizeResponse};
use crate::service::Service;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safeloc_dataset::{unit_to_dbm, BuildingDataset};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Shape of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadPlan {
    /// Concurrent closed-loop clients.
    pub population: usize,
    /// Requests each client issues before leaving.
    pub requests_per_client: usize,
    /// Seed of the per-client request-mix streams.
    pub seed: u64,
}

impl LoadPlan {
    /// A plan; total request count is `population * requests_per_client`.
    pub fn new(population: usize, requests_per_client: usize, seed: u64) -> Self {
        Self {
            population,
            requests_per_client,
            seed,
        }
    }

    /// Total requests the plan issues.
    pub fn total_requests(&self) -> usize {
        self.population * self.requests_per_client
    }
}

/// Latency/throughput statistics of one run — the `serving` numbers that
/// land in `BENCH_nn.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingStats {
    /// Closed-loop clients.
    pub population: usize,
    /// Requests completed.
    pub requests: usize,
    /// Requests rejected at admission or by shutdown.
    pub failures: usize,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Mean response latency, milliseconds.
    pub mean_ms: f64,
    /// Median response latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile response latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile response latency, milliseconds.
    pub p99_ms: f64,
    /// Lowest model version observed across responses.
    pub min_version: u64,
    /// Highest model version observed across responses (`>` min means the
    /// run rode through at least one hot swap).
    pub max_version: u64,
}

/// Everything a load run produced: per-request latencies (nanoseconds, in
/// completion order per client) plus every response.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// The executed plan.
    pub plan: LoadPlan,
    /// Wall time of the run, nanoseconds.
    pub wall_ns: u64,
    /// Per-client latency series, nanoseconds.
    pub latencies_ns: Vec<Vec<u64>>,
    /// Per-client response series, aligned with `latencies_ns`.
    pub responses: Vec<Vec<LocalizeResponse>>,
    /// Requests that failed at admission/shutdown, per client.
    pub failures: usize,
}

impl LoadOutcome {
    /// Flattens and summarizes into serializable statistics.
    pub fn stats(&self) -> ServingStats {
        let mut lat_ms: Vec<f64> = self
            .latencies_ns
            .iter()
            .flatten()
            .map(|&ns| ns as f64 / 1e6)
            .collect();
        lat_ms.sort_by(f64::total_cmp);
        let requests = lat_ms.len();
        let wall_ms = self.wall_ns as f64 / 1e6;
        let versions = self
            .responses
            .iter()
            .flatten()
            .map(|r| r.model_version)
            .collect::<Vec<u64>>();
        ServingStats {
            population: self.plan.population,
            requests,
            failures: self.failures,
            wall_ms,
            throughput_rps: if wall_ms > 0.0 {
                requests as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            mean_ms: if requests == 0 {
                0.0
            } else {
                lat_ms.iter().sum::<f64>() / requests as f64
            },
            p50_ms: percentile(&lat_ms, 0.50),
            p95_ms: percentile(&lat_ms, 0.95),
            p99_ms: percentile(&lat_ms, 0.99),
            min_version: versions.iter().copied().min().unwrap_or(0),
            max_version: versions.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile over an already sorted series (0 when empty).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Builds a request-prototype pool from a dataset's held-out test splits:
/// one [`LocalizeRequest`] per test fingerprint, carrying the collecting
/// device's model name and the fingerprint denormalized back to raw dBm
/// (the wire format phones actually send).
pub fn request_pool(data: &BuildingDataset) -> Vec<LocalizeRequest> {
    let mut pool = Vec::new();
    for (device, set) in data.devices.iter().zip(&data.client_test) {
        for r in 0..set.x.rows() {
            let rss_dbm: Vec<f32> = set.x.row(r).iter().map(|&u| unit_to_dbm(u)).collect();
            pool.push(LocalizeRequest::new(
                data.building.id,
                &device.name,
                rss_dbm,
            ));
        }
    }
    pool
}

/// Runs one closed-loop load plan against `service`, drawing requests
/// from `pool`.
///
/// # Panics
///
/// Panics if `pool` is empty.
pub fn run_load(service: &Service, pool: &[LocalizeRequest], plan: &LoadPlan) -> LoadOutcome {
    assert!(!pool.is_empty(), "load generation needs a request pool");
    let start = Instant::now();
    let per_client: Vec<(Vec<u64>, Vec<LocalizeResponse>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.population)
            .map(|client| {
                let plan = *plan;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(plan.seed ^ ((client as u64 + 1) << 20));
                    let mut latencies = Vec::with_capacity(plan.requests_per_client);
                    let mut responses = Vec::with_capacity(plan.requests_per_client);
                    let mut failures = 0;
                    for _ in 0..plan.requests_per_client {
                        let request = &pool[rng.gen_range(0..pool.len())];
                        let sent = Instant::now();
                        match service.localize(request) {
                            Ok(response) => {
                                latencies.push(sent.elapsed().as_nanos() as u64);
                                responses.push(response);
                            }
                            Err(_) => failures += 1,
                        }
                    }
                    (latencies, responses, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            // panic-ok: load clients are our own closure above, which
            // cannot panic except through a bug in the harness itself;
            // propagating that bug loudly is the correct behavior for a
            // measurement tool (silently dropping a client would skew
            // the reported percentiles instead).
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    let mut latencies_ns = Vec::with_capacity(per_client.len());
    let mut responses = Vec::with_capacity(per_client.len());
    let mut failures = 0;
    for (lat, resp, fail) in per_client {
        latencies_ns.push(lat);
        responses.push(resp);
        failures += fail;
    }
    LoadOutcome {
        plan: *plan,
        wall_ns,
        latencies_ns,
        responses,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelKey, ModelRegistry};
    use crate::service::{ServeConfig, Service};
    use safeloc_dataset::{Building, DatasetConfig, DeviceCatalog};
    use safeloc_nn::{Activation, Sequential};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn percentiles_cover_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        // Index round((n-1)·q) over 1..=100: round(49.5) rounds up.
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
    }

    #[test]
    fn closed_loop_run_completes_every_request() {
        let data = safeloc_dataset::BuildingDataset::generate(
            Building::tiny(6),
            &DatasetConfig::tiny(),
            6,
        );
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(
            ModelKey::default_for(data.building.id),
            Sequential::mlp(
                &[data.building.num_aps(), 12, data.building.num_rps()],
                Activation::Relu,
                1,
            ),
            Some(data.building.clone()),
        );
        let service = Service::start(
            registry,
            DeviceCatalog::new(data.devices.clone()),
            ServeConfig {
                max_batch: 8,
                batch_deadline: Duration::from_micros(200),
                workers: 2,
            },
        );
        let pool = request_pool(&data);
        assert!(!pool.is_empty());
        let plan = LoadPlan::new(3, 10, 42);
        let outcome = run_load(&service, &pool, &plan);
        let stats = outcome.stats();
        assert_eq!(stats.requests, plan.total_requests());
        assert_eq!(stats.failures, 0);
        assert!(stats.throughput_rps > 0.0);
        assert!(stats.p50_ms <= stats.p95_ms && stats.p95_ms <= stats.p99_ms);
        assert_eq!((stats.min_version, stats.max_version), (1, 1));
        // Responses carry coordinates because geometry was published.
        assert!(outcome
            .responses
            .iter()
            .flatten()
            .all(|r| r.position.is_some()));
        service.shutdown();
    }
}
