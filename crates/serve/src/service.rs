//! The micro-batch scheduler: channel-fed worker threads that coalesce
//! pending requests into batches and run them through the rayon-parallel
//! batch-inference hot path.
//!
//! # Batching semantics
//!
//! A worker that picks up a request keeps draining the queue until it
//! holds [`ServeConfig::max_batch`] requests **or**
//! [`ServeConfig::batch_deadline`] has elapsed since it picked up the
//! first one, whichever comes first — so a lone request never waits
//! longer than one deadline, and a burst rides the blocked-kernel
//! throughput of batch-32 inference. Batches may mix buildings, device
//! classes and model versions: the worker groups the drained requests by
//! pinned snapshot and runs one forward pass per group.
//!
//! # Why served results are bitwise offline results
//!
//! Rows of a forward pass are independent — the blocked kernels
//! accumulate each output row over `k` in a fixed order regardless of
//! which other rows share the batch, and `Sequential::predict` is
//! thread-count invariant by the same argument (pinned by
//! `tests/parallel_determinism.rs`). So *any* batching schedule — batch
//! sizes, deadlines, request interleaving, worker count — produces
//! bitwise the predictions of one offline `predict` over the same rows on
//! the same snapshot. `tests/service.rs` pins this end to end.
//!
//! # Hot swaps
//!
//! Requests pin their model snapshot at submission
//! ([`RequestFront::admit`]): a publish that lands after a request was
//! admitted does not retarget it. In-flight requests therefore complete
//! on the version they were admitted under, and every request submitted
//! after the publish observes the new version — the clean hand-off the
//! hot-swap test pins.

use crate::front::{AdmittedRequest, LocalizeRequest, LocalizeResponse, RequestFront, ServeError};
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;
use safeloc_dataset::DeviceCatalog;
use safeloc_nn::Matrix;
use safeloc_telemetry::Registry;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest micro-batch a worker assembles (paper-bench batch size).
    pub max_batch: usize,
    /// Longest a picked-up request waits for co-riders.
    pub batch_deadline: Duration,
    /// Worker threads draining the queue.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            batch_deadline: Duration::from_millis(2),
            workers: 2,
        }
    }
}

/// One enqueued request: the admitted form plus its reply channel and
/// admission timestamp (for the admission→response latency histogram).
struct Job {
    admitted: AdmittedRequest,
    reply: Sender<LocalizeResponse>,
    submitted: Instant,
}

/// A pending response: blocks on [`Ticket::wait`] until the batch holding
/// the request has executed.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<LocalizeResponse>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] if the service stopped before the
    /// request executed.
    pub fn wait(self) -> Result<LocalizeResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)
    }
}

/// The running service: admission front + queue + worker pool.
///
/// Shareable across client threads behind an `Arc` (or plain references);
/// [`Service::shutdown`] (or drop) drains and joins the workers.
pub struct Service {
    front: RequestFront,
    queue: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServeConfig,
    metrics: Arc<ServeMetrics>,
}

impl Service {
    /// Starts a service over `registry` with the given device catalog and
    /// scheduler configuration, recording into the process-global
    /// telemetry registry.
    pub fn start(
        registry: Arc<ModelRegistry>,
        catalog: DeviceCatalog,
        config: ServeConfig,
    ) -> Self {
        Self::start_with_telemetry(registry, catalog, config, safeloc_telemetry::global())
    }

    /// Like [`Service::start`], but records into an explicit telemetry
    /// registry — useful for tests and per-service isolation.
    pub fn start_with_telemetry(
        registry: Arc<ModelRegistry>,
        catalog: DeviceCatalog,
        config: ServeConfig,
        telemetry: Arc<Registry>,
    ) -> Self {
        let metrics = ServeMetrics::new(telemetry);
        let (tx, rx) = channel::<Job>();
        let shared_rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&shared_rx);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || worker_loop(&rx, config, &metrics))
            })
            .collect();
        Self {
            front: RequestFront::new(registry, catalog),
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            config,
            metrics,
        }
    }

    /// The scheduler configuration the service runs under.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The telemetry registry this service records into.
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(self.metrics.registry())
    }

    /// The registry requests are routed through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        self.front.registry()
    }

    /// Submits a request; returns a [`Ticket`] for the response.
    ///
    /// Admission (device-class routing, snapshot pinning, normalization,
    /// dimension checks) happens synchronously here; only the forward
    /// pass is deferred to the batch workers.
    ///
    /// # Errors
    ///
    /// Any [`RequestFront::admit`] error, or
    /// [`ServeError::ShuttingDown`] after [`Service::shutdown`].
    pub fn submit(&self, request: &LocalizeRequest) -> Result<Ticket, ServeError> {
        let admitted = self.front.admit(request)?;
        self.metrics.on_admit(
            admitted.model.key.building,
            &admitted.device_class,
            admitted.model.version,
        );
        let (reply, rx) = channel();
        // Poison recovery: the guarded Option<Sender> is swapped whole,
        // never left half-written, so serving survives a panicked peer.
        let queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let tx = queue.as_ref().ok_or(ServeError::ShuttingDown)?;
        let job = Job {
            admitted,
            reply,
            submitted: Instant::now(),
        };
        if tx.send(job).is_err() {
            self.metrics.on_drop();
            return Err(ServeError::ShuttingDown);
        }
        Ok(Ticket { rx })
    }

    /// Submits a request and blocks for the response — the closed-loop
    /// client shape.
    ///
    /// # Errors
    ///
    /// See [`Service::submit`] and [`Ticket::wait`].
    pub fn localize(&self, request: &LocalizeRequest) -> Result<LocalizeResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Stops accepting requests, drains the queue and joins the workers.
    /// Already-submitted requests still complete.
    pub fn shutdown(&self) {
        // Dropping the sender disconnects the queue; workers drain what is
        // left and exit.
        // Poison recovery on both locks: shutdown also runs from Drop,
        // possibly while unwinding from the very panic that poisoned
        // them, and must still disconnect the queue and join workers.
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            // A worker that panicked already failed its in-flight tickets
            // (their reply senders dropped); don't panic again here —
            // shutdown() also runs from Drop, possibly mid-unwind, where a
            // second panic would abort the process.
            if handle.join().is_err() {
                eprintln!("serve worker panicked; its pending requests were dropped");
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker: take one request, coalesce co-riders until batch-full or
/// deadline, execute grouped by pinned snapshot, reply, repeat.
fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, config: ServeConfig, metrics: &ServeMetrics) {
    let max_batch = config.max_batch.max(1);
    loop {
        let mut batch = {
            // Hold the receiver while assembling one batch: coalescing is
            // the point, and the next worker takes over as soon as this
            // one moves on to the forward pass.
            // Poison recovery: a worker that panicked mid-batch already
            // failed its own tickets; the receiver itself stays valid.
            let queue = rx.lock().unwrap_or_else(PoisonError::into_inner);
            let first = match queue.recv() {
                Ok(job) => job,
                Err(_) => return, // disconnected and drained: shut down
            };
            let mut batch = vec![first];
            let deadline = Instant::now() + config.batch_deadline;
            while batch.len() < max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match queue.recv_timeout(deadline - now) {
                    Ok(job) => batch.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            batch
        };
        metrics.on_batch(batch.len());
        execute_batch(&mut batch, metrics);
    }
}

/// Runs one assembled micro-batch: group by pinned snapshot, one forward
/// pass per group, reply per request.
fn execute_batch(batch: &mut Vec<Job>, metrics: &ServeMetrics) {
    while !batch.is_empty() {
        // Peel off the largest group sharing the first job's snapshot.
        // Arc pointer identity is exact: every publish makes a fresh Arc.
        let model = Arc::clone(&batch[0].admitted.model);
        let mut group = Vec::with_capacity(batch.len());
        let mut rest = Vec::new();
        for job in batch.drain(..) {
            if Arc::ptr_eq(&job.admitted.model, &model) {
                group.push(job);
            } else {
                rest.push(job);
            }
        }
        *batch = rest;

        let cols = model.network.in_dim();
        let mut rows = Vec::with_capacity(group.len() * cols);
        for job in &group {
            rows.extend_from_slice(&job.admitted.features);
        }
        // panic-ok: infallible by construction — admit() rejected any row
        // whose width differs from the pinned model's in_dim, and rows is
        // exactly group.len() such rows.
        let x = Matrix::from_vec(group.len(), cols, rows)
            .expect("admission fixed every row to the model width");
        let labels = model.predict(&x);
        for (job, label) in group.into_iter().zip(labels) {
            metrics.on_reply(job.submitted);
            // A dropped ticket (client gave up) is not an error.
            let _ = job.reply.send(LocalizeResponse {
                label,
                position: model.position_of(label),
                device_class: job.admitted.device_class,
                model_version: model.version,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelKey, DEFAULT_CLASS};
    use safeloc_nn::{Activation, Sequential};

    fn service(max_batch: usize, deadline_ms: u64, workers: usize) -> Service {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(
            ModelKey::default_for(1),
            Sequential::mlp(&[4, 8, 3], Activation::Relu, 7),
            None,
        );
        Service::start(
            registry,
            DeviceCatalog::paper(),
            ServeConfig {
                max_batch,
                batch_deadline: Duration::from_millis(deadline_ms),
                workers,
            },
        )
    }

    #[test]
    fn single_request_round_trips() {
        let service = service(32, 1, 2);
        let resp = service
            .localize(&LocalizeRequest::new(1, "HTC U11", vec![-50.0; 4]))
            .unwrap();
        assert!(resp.label < 3);
        assert_eq!(resp.model_version, 1);
        assert_eq!(resp.device_class, DEFAULT_CLASS, "no per-device variant");
    }

    #[test]
    fn submit_after_shutdown_is_rejected_and_inflight_completes() {
        let service = service(4, 1, 1);
        let ticket = service
            .submit(&LocalizeRequest::new(1, "x", vec![-40.0; 4]))
            .unwrap();
        service.shutdown();
        // The already-submitted request still completed.
        assert!(ticket.wait().is_ok());
        assert_eq!(
            service
                .submit(&LocalizeRequest::new(1, "x", vec![-40.0; 4]))
                .unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn admission_errors_surface_at_submit_time() {
        let service = service(32, 1, 1);
        assert_eq!(
            service
                .submit(&LocalizeRequest::new(2, "x", vec![-40.0; 4]))
                .unwrap_err(),
            ServeError::UnknownBuilding(2)
        );
        assert_eq!(
            service
                .submit(&LocalizeRequest::new(1, "x", vec![-40.0; 9]))
                .unwrap_err(),
            ServeError::WrongDimension {
                expected: 4,
                found: 9
            }
        );
    }
}
