//! The versioned model registry: hot-swappable global models keyed by
//! (building × device class).
//!
//! The registry is the hand-off point between training and serving. FL
//! sessions publish hardened global models into it (directly or through
//! [`RegistryPublisher`](crate::RegistryPublisher)); the request front
//! resolves each query to one [`ServedModel`] out of it. Three invariants
//! drive the design:
//!
//! * **No torn weights.** Models are immutable once published: a publish
//!   swaps an `Arc<ServedModel>` pointer under the key, never mutates
//!   weights in place. A reader that resolved a model keeps serving that
//!   exact snapshot until it resolves again.
//! * **Readers never block publishers** (and vice versa) beyond a
//!   pointer-sized critical section: the lock guards only the
//!   `HashMap<key, Arc>` — cloning an `Arc` out or swapping one in —
//!   never a weight copy or a forward pass.
//! * **Versions are monotone per key.** Every publish bumps the key's
//!   version; readers can therefore assert freshness and the hot-swap
//!   tests can pin "in-flight requests finish on the old version,
//!   subsequent requests observe the new one".
//!
//! Registries persist across processes through [`ModelRegistry::save`] /
//! [`ModelRegistry::load`] (schema-tagged JSON of full networks, built on
//! the same serde layer as [`safeloc_nn::snapshot`]).

use safeloc_dataset::Building;
use safeloc_nn::{Matrix, NamedParams, ParamError, Sequential};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Schema tag of registry snapshot files.
pub const REGISTRY_SCHEMA: &str = "safeloc-serve/registry/v1";

/// The device class a building's fallback model is registered under —
/// requests from devices the catalog does not know route here.
pub const DEFAULT_CLASS: &str = "*";

/// Registry key: one model variant per (building, device class).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelKey {
    /// Building identifier.
    pub building: usize,
    /// Device class name ([`DEFAULT_CLASS`] for the building default).
    pub device_class: String,
}

impl ModelKey {
    /// A per-device-class key.
    pub fn new(building: usize, device_class: &str) -> Self {
        Self {
            building,
            device_class: device_class.to_string(),
        }
    }

    /// The building's default-model key.
    pub fn default_for(building: usize) -> Self {
        Self::new(building, DEFAULT_CLASS)
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}/{}", self.building, self.device_class)
    }
}

/// One immutable, servable model snapshot.
///
/// Published once, never mutated: hot swaps replace the whole value. The
/// optional geometry lets responses carry metric coordinates next to the
/// RP label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedModel {
    /// The key this snapshot is published under.
    pub key: ModelKey,
    /// Monotone per-key version (1-based).
    pub version: u64,
    /// The network weights being served.
    pub network: Sequential,
    /// Floorplan for label → coordinate mapping, when known.
    pub geometry: Option<Building>,
}

impl ServedModel {
    /// Batch prediction through the rayon-parallel hot path — the same
    /// code offline evaluation uses, so served results are bitwise
    /// comparable.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.network.predict(x)
    }

    /// Metric coordinates of an RP label, when geometry is known.
    pub fn position_of(&self, label: usize) -> Option<(f32, f32)> {
        self.geometry.as_ref().map(|b| {
            let rp = b.rp_coord(label);
            (rp.x, rp.y)
        })
    }
}

/// Errors publishing into or loading a registry.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Published parameters do not match the key's serving architecture.
    Arch(ParamError),
    /// Snapshot file could not be read or written.
    Io(String),
    /// Snapshot file is malformed or carries the wrong schema.
    Parse(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Arch(e) => write!(f, "registry architecture mismatch: {e}"),
            RegistryError::Io(msg) => write!(f, "registry I/O error: {msg}"),
            RegistryError::Parse(msg) => write!(f, "registry parse error: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<safeloc_nn::SnapshotError> for RegistryError {
    fn from(e: safeloc_nn::SnapshotError) -> Self {
        match e {
            safeloc_nn::SnapshotError::Io(msg) => RegistryError::Io(msg),
            safeloc_nn::SnapshotError::Parse(msg) => RegistryError::Parse(msg),
            safeloc_nn::SnapshotError::Arch(e) => RegistryError::Arch(e),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct RegistryFile {
    schema: String,
    models: Vec<ServedModel>,
}

/// The registry: an atomically swappable map of published models.
///
/// Cheaply shareable behind an [`Arc`]; all methods take `&self`.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<ModelKey, Arc<ServedModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-locks the map, recovering from poison: every mutation is a
    /// single `HashMap` insert that either happened or did not, so a
    /// panicking publisher cannot leave the map torn and the serving
    /// path must not abort because an unrelated thread died.
    fn read_models(&self) -> RwLockReadGuard<'_, HashMap<ModelKey, Arc<ServedModel>>> {
        self.models.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-locks the map with the same poison recovery as
    /// [`Self::read_models`].
    fn write_models(&self) -> RwLockWriteGuard<'_, HashMap<ModelKey, Arc<ServedModel>>> {
        self.models.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes a network under `key`, atomically replacing any previous
    /// version; returns the new version number.
    ///
    /// The critical section is one `HashMap` insert — in-flight batches
    /// keep the `Arc` they already resolved and finish on the old
    /// snapshot.
    pub fn publish(&self, key: ModelKey, network: Sequential, geometry: Option<Building>) -> u64 {
        let mut models = self.write_models();
        let version = models.get(&key).map_or(1, |m| m.version + 1);
        models.insert(
            key.clone(),
            Arc::new(ServedModel {
                key,
                version,
                network,
                geometry,
            }),
        );
        version
    }

    /// Publishes new *parameters* under `key`: loads them into the key's
    /// current serving network and publishes the result — the shape the
    /// FL layer produces ([`NamedParams`] global models).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Arch`] if the key has no current model to load
    /// into (reported as a count mismatch against an empty architecture)
    /// or the parameters do not fit its architecture; nothing is published
    /// on error.
    pub fn publish_params(
        &self,
        key: &ModelKey,
        params: &NamedParams,
    ) -> Result<u64, RegistryError> {
        use safeloc_nn::HasParams;
        let current = self
            .get(key)
            .ok_or(RegistryError::Arch(ParamError::CountMismatch {
                expected: 0,
                found: params.len(),
            }))?;
        let mut network = current.network.clone();
        network.load(params).map_err(RegistryError::Arch)?;
        Ok(self.publish(key.clone(), network, current.geometry.clone()))
    }

    /// The current model under `key`, if any.
    pub fn get(&self, key: &ModelKey) -> Option<Arc<ServedModel>> {
        self.read_models().get(key).cloned()
    }

    /// Resolves a request's (building, device class) to a servable model:
    /// the class's own variant when published, else the building default —
    /// the HetNN routing rule.
    pub fn resolve(&self, building: usize, device_class: &str) -> Option<Arc<ServedModel>> {
        let models = self.read_models();
        models
            .get(&ModelKey::new(building, device_class))
            .or_else(|| models.get(&ModelKey::default_for(building)))
            .cloned()
    }

    /// Every published key, sorted for stable iteration.
    pub fn keys(&self) -> Vec<ModelKey> {
        let mut keys: Vec<ModelKey> = self.read_models().keys().cloned().collect();
        keys.sort_by(|a, b| (a.building, &a.device_class).cmp(&(b.building, &b.device_class)));
        keys
    }

    /// Number of published (building, device class) entries.
    pub fn len(&self) -> usize {
        self.read_models().len()
    }

    /// `true` if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes every published model to a schema-tagged snapshot file, in
    /// [`ModelRegistry::keys`] order.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RegistryError> {
        // One read-lock acquisition: the file is a consistent point-in-time
        // snapshot even while publishers keep swapping entries.
        let models: Vec<ServedModel> = {
            let map = self.read_models();
            let mut list: Vec<ServedModel> = map.values().map(|m| (**m).clone()).collect();
            list.sort_by(|a, b| {
                (a.key.building, &a.key.device_class).cmp(&(b.key.building, &b.key.device_class))
            });
            list
        };
        safeloc_nn::snapshot::write_json_file(
            path,
            &RegistryFile {
                schema: REGISTRY_SCHEMA.to_string(),
                models,
            },
        )?;
        Ok(())
    }

    /// Loads a registry snapshot, restoring every model at its saved
    /// version (so versions stay monotone across process restarts).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] if the file cannot be read,
    /// [`RegistryError::Parse`] on malformed JSON or a wrong schema tag.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RegistryError> {
        let file: RegistryFile = safeloc_nn::snapshot::read_json_file(path)?;
        safeloc_nn::snapshot::check_schema(&file.schema, REGISTRY_SCHEMA)?;
        let registry = Self::new();
        {
            let mut models = registry.write_models();
            for model in file.models {
                models.insert(model.key.clone(), Arc::new(model));
            }
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_nn::{Activation, HasParams};

    fn net(seed: u64) -> Sequential {
        Sequential::mlp(&[4, 6, 3], Activation::Relu, seed)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "safeloc_registry_{}_{name}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn publish_bumps_versions_per_key() {
        let reg = ModelRegistry::new();
        let key = ModelKey::default_for(1);
        assert_eq!(reg.publish(key.clone(), net(0), None), 1);
        assert_eq!(reg.publish(key.clone(), net(1), None), 2);
        let other = ModelKey::new(2, "HTC U11");
        assert_eq!(reg.publish(other.clone(), net(2), None), 1);
        assert_eq!(reg.get(&key).unwrap().version, 2);
        assert_eq!(reg.get(&other).unwrap().version, 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn resolve_falls_back_to_the_building_default() {
        let reg = ModelRegistry::new();
        reg.publish(ModelKey::default_for(3), net(0), None);
        reg.publish(ModelKey::new(3, "HTC U11"), net(1), None);
        let own = reg.resolve(3, "HTC U11").unwrap();
        assert_eq!(own.key.device_class, "HTC U11");
        let fallback = reg.resolve(3, "Pixel 9").unwrap();
        assert_eq!(fallback.key.device_class, DEFAULT_CLASS);
        assert!(reg.resolve(4, "HTC U11").is_none(), "unknown building");
    }

    #[test]
    fn publish_params_requires_matching_architecture() {
        let reg = ModelRegistry::new();
        let key = ModelKey::default_for(1);
        // No base model yet: params cannot be materialized.
        assert!(matches!(
            reg.publish_params(&key, &net(0).snapshot()),
            Err(RegistryError::Arch(_))
        ));
        reg.publish(key.clone(), net(0), None);
        let v = reg.publish_params(&key, &net(9).snapshot()).unwrap();
        assert_eq!(v, 2);
        assert_eq!(reg.get(&key).unwrap().network, net(9));
        // Wrong architecture is rejected and nothing is published.
        let wrong = Sequential::mlp(&[4, 5, 3], Activation::Relu, 0).snapshot();
        assert!(matches!(
            reg.publish_params(&key, &wrong),
            Err(RegistryError::Arch(_))
        ));
        assert_eq!(reg.get(&key).unwrap().version, 2);
    }

    #[test]
    fn snapshot_round_trip_preserves_models_and_versions() {
        let reg = ModelRegistry::new();
        reg.publish(ModelKey::default_for(1), net(0), Some(Building::tiny(1)));
        reg.publish(ModelKey::default_for(1), net(1), Some(Building::tiny(1)));
        reg.publish(ModelKey::new(1, "OnePlus 3"), net(2), None);
        let path = tmp("round_trip");
        reg.save(&path).unwrap();
        let back = ModelRegistry::load(&path).unwrap();
        assert_eq!(back.keys(), reg.keys());
        for key in reg.keys() {
            let a = reg.get(&key).unwrap();
            let b = back.get(&key).unwrap();
            assert_eq!(a.version, b.version, "{key}");
            assert_eq!(a.network, b.network, "{key}");
            assert_eq!(a.geometry, b.geometry, "{key}");
        }
        // Publishing after a load continues the version sequence.
        assert_eq!(back.publish(ModelKey::default_for(1), net(3), None), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_registry_files_fail_loudly() {
        let path = tmp("corrupt");
        std::fs::write(&path, "[1, 2").unwrap();
        assert!(matches!(
            ModelRegistry::load(&path),
            Err(RegistryError::Parse(_))
        ));
        std::fs::write(&path, "{\"schema\": \"nope\", \"models\": []}").unwrap();
        assert!(matches!(
            ModelRegistry::load(&path),
            Err(RegistryError::Parse(_))
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            ModelRegistry::load(&path),
            Err(RegistryError::Io(_))
        ));
    }

    #[test]
    fn position_of_maps_labels_to_coordinates() {
        let b = Building::tiny(5);
        let model = ServedModel {
            key: ModelKey::default_for(0),
            version: 1,
            network: Sequential::mlp(&[b.num_aps(), 8, b.num_rps()], Activation::Relu, 0),
            geometry: Some(b.clone()),
        };
        let (x, y) = model.position_of(3).unwrap();
        let rp = b.rp_coord(3);
        assert_eq!((x, y), (rp.x, rp.y));
        let bare = ServedModel {
            geometry: None,
            ..model
        };
        assert!(bare.position_of(3).is_none());
    }
}
