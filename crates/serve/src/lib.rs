//! `safeloc-serve` — the online localization serving subsystem.
//!
//! SAFELOC's end product is a *service*: a fleet of heterogeneous phones
//! submitting RSS fingerprints and getting locations back, while federated
//! rounds keep publishing hardened global models underneath them. This
//! crate closes that training→publish→serve loop in four layers:
//!
//! * [`ModelRegistry`] — versioned, atomically hot-swappable models keyed
//!   by (building × device class), with schema-tagged snapshot
//!   persistence. Published models are immutable; readers resolve an
//!   `Arc` snapshot and can never observe torn weights.
//! * [`RequestFront`] — admission: raw-dBm fingerprints are standardized
//!   exactly like the training data, and the phone's self-reported device
//!   model is resolved through a [`DeviceCatalog`](safeloc_dataset::DeviceCatalog)
//!   to the right model variant (the HetNN mapping), falling back to the
//!   building default for unknown devices.
//! * [`Service`] — channel-fed micro-batch workers that coalesce pending
//!   requests (up to batch-32 or a deadline, whichever first) and run
//!   them through the rayon-parallel batch-inference hot path. Served
//!   predictions are bitwise identical to offline `predict` on the same
//!   snapshot for any batching schedule (`tests/service.rs`).
//! * [`RegistryPublisher`] + [`run_load`] — the closed loop: an
//!   [`FlSession`](safeloc_fl::FlSession) hook that hot-swaps each
//!   round's aggregated model into the registry, and a closed-loop
//!   synthetic client population measuring throughput and p50/p95/p99
//!   latency against the live service (the `serve_bench` binary drives
//!   both concurrently).
//!
//! # Example
//!
//! ```
//! use safeloc_dataset::{Building, BuildingDataset, DatasetConfig, DeviceCatalog};
//! use safeloc_nn::{Activation, Sequential};
//! use safeloc_serve::{
//!     LocalizeRequest, ModelKey, ModelRegistry, ServeConfig, Service,
//! };
//! use std::sync::Arc;
//!
//! let data = BuildingDataset::generate(Building::tiny(3), &DatasetConfig::tiny(), 3);
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish(
//!     ModelKey::default_for(data.building.id),
//!     Sequential::mlp(
//!         &[data.building.num_aps(), 16, data.building.num_rps()],
//!         Activation::Relu,
//!         7,
//!     ),
//!     Some(data.building.clone()),
//! );
//! let service = Service::start(
//!     Arc::clone(&registry),
//!     DeviceCatalog::new(data.devices.clone()),
//!     ServeConfig::default(),
//! );
//! let request = LocalizeRequest::new(
//!     data.building.id,
//!     &data.devices[0].name,
//!     vec![-60.0; data.building.num_aps()],
//! );
//! let response = service.localize(&request).unwrap();
//! assert!(response.label < data.building.num_rps());
//! assert_eq!(response.model_version, 1);
//! service.shutdown();
//! ```

pub mod front;
pub mod loadgen;
pub mod metrics;
pub mod publisher;
pub mod registry;
pub mod service;

pub use front::{AdmittedRequest, LocalizeRequest, LocalizeResponse, RequestFront, ServeError};
pub use loadgen::{request_pool, run_load, LoadOutcome, LoadPlan, ServingStats};
pub use metrics::ServeMetrics;
pub use publisher::RegistryPublisher;
pub use registry::{
    ModelKey, ModelRegistry, RegistryError, ServedModel, DEFAULT_CLASS, REGISTRY_SCHEMA,
};
pub use service::{ServeConfig, Service, Ticket};
