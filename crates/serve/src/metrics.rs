//! Serving-side telemetry: per-route request counters, scheduler
//! histograms and the hot-swap version gauge, all recorded as a pure
//! side channel of the request path.
//!
//! Handles are pre-registered per (building × device-class) route and
//! cached behind an `RwLock`-protected nested map, so the steady-state
//! record path is a read-lock plus relaxed atomic ops — no allocation,
//! no write contention. Registration (the first request a route ever
//! sees) takes the write lock once.

use safeloc_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

/// Pre-registered handles for one (building × device-class) route.
struct RouteHandles {
    requests: Arc<Counter>,
    version: Arc<Gauge>,
}

/// Telemetry handles for one [`crate::service::Service`].
///
/// Metric catalog (all names prefixed `serve_`):
///
/// | series | kind | labels |
/// |---|---|---|
/// | `serve_requests_total` | counter | `building`, `device_class` |
/// | `serve_model_version` | gauge | `building`, `device_class` |
/// | `serve_batch_size` | histogram | — |
/// | `serve_queue_depth` | histogram | — |
/// | `serve_latency_us` | histogram | — |
/// | `serve_pending_requests` | gauge | — |
pub struct ServeMetrics {
    registry: Arc<Registry>,
    batch_size: Arc<Histogram>,
    queue_depth: Arc<Histogram>,
    latency_us: Arc<Histogram>,
    pending: Arc<Gauge>,
    routes: RwLock<HashMap<usize, HashMap<String, RouteHandles>>>,
}

impl ServeMetrics {
    /// Builds the handle set over `registry`, registering the
    /// route-independent series eagerly.
    pub fn new(registry: Arc<Registry>) -> Arc<Self> {
        let batch_size = registry.histogram("serve_batch_size", &[]);
        let queue_depth = registry.histogram("serve_queue_depth", &[]);
        let latency_us = registry.histogram("serve_latency_us", &[]);
        let pending = registry.gauge("serve_pending_requests", &[]);
        Arc::new(Self {
            registry,
            batch_size,
            queue_depth,
            latency_us,
            pending,
            routes: RwLock::new(HashMap::new()),
        })
    }

    /// The registry every series lives in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records an admitted request: bumps the route counter, publishes
    /// the model version the request pinned, and marks it pending.
    pub fn on_admit(&self, building: usize, device_class: &str, model_version: u64) {
        self.with_route(building, device_class, |route| {
            route.requests.inc();
            route.version.set(model_version as i64);
        });
        self.pending.add(1);
    }

    /// Records one assembled micro-batch and the queue depth the worker
    /// observed when it sealed the batch.
    pub fn on_batch(&self, batch_len: usize) {
        self.batch_size.record(batch_len as u64);
        self.queue_depth.record(self.pending.get().max(0) as u64);
    }

    /// Records a completed request: admission→response latency, and one
    /// fewer pending.
    pub fn on_reply(&self, submitted: Instant) {
        self.latency_us
            .record_f64(submitted.elapsed().as_secs_f64() * 1e6);
        self.pending.add(-1);
    }

    /// Un-counts a request that was admitted but never executed (queue
    /// already torn down) — pending comes back without a latency sample.
    pub fn on_drop(&self) {
        self.pending.add(-1);
    }

    /// Runs `f` over the route's handles, registering them on first use.
    fn with_route(&self, building: usize, device_class: &str, f: impl FnOnce(&RouteHandles)) {
        {
            // Poison recovery: route registration inserts whole entries;
            // a panicked registrant cannot leave the map torn, and
            // metrics must never take the serving path down.
            let routes = self.routes.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(route) = routes.get(&building).and_then(|m| m.get(device_class)) {
                f(route);
                return;
            }
        }
        let mut routes = self.routes.write().unwrap_or_else(PoisonError::into_inner);
        let per_class = routes.entry(building).or_default();
        let route = per_class
            .entry(device_class.to_string())
            .or_insert_with(|| {
                let building = building.to_string();
                let labels: &[(&str, &str)] =
                    &[("building", &building), ("device_class", device_class)];
                RouteHandles {
                    requests: self.registry.counter("serve_requests_total", labels),
                    version: self.registry.gauge("serve_model_version", labels),
                }
            });
        f(route);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn routes_register_once_and_accumulate() {
        let metrics = ServeMetrics::new(Arc::new(Registry::new()));
        metrics.on_admit(1, "HTC U11", 3);
        metrics.on_admit(1, "HTC U11", 4);
        metrics.on_admit(2, "default", 1);
        let snap = metrics.registry().snapshot();
        let requests: Vec<_> = snap
            .counters
            .iter()
            .filter(|c| c.name == "serve_requests_total")
            .collect();
        assert_eq!(requests.len(), 2, "one series per route");
        let b1 = requests
            .iter()
            .find(|c| c.labels.contains(&("building".into(), "1".into())))
            .unwrap();
        assert_eq!(b1.value, 2);
        let version = snap
            .gauges
            .iter()
            .find(|g| {
                g.name == "serve_model_version"
                    && g.labels.contains(&("building".into(), "1".into()))
            })
            .unwrap();
        assert_eq!(version.value, 4, "gauge tracks the latest pinned version");
    }

    #[test]
    fn pending_tracks_admit_and_reply() {
        let metrics = ServeMetrics::new(Arc::new(Registry::new()));
        let submitted = Instant::now() - Duration::from_millis(5);
        metrics.on_admit(1, "x", 1);
        metrics.on_admit(1, "x", 1);
        metrics.on_batch(2);
        metrics.on_reply(submitted);
        metrics.on_reply(submitted);
        let snap = metrics.registry().snapshot();
        let pending = snap
            .gauges
            .iter()
            .find(|g| g.name == "serve_pending_requests")
            .unwrap();
        assert_eq!(pending.value, 0);
        let latency = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve_latency_us")
            .unwrap();
        assert_eq!(latency.count, 2);
        assert!(latency.sum >= 2.0 * 5_000.0, "5ms floor per reply");
        let depth = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve_queue_depth")
            .unwrap();
        assert_eq!(depth.count, 1);
    }
}
