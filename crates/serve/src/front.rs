//! The device-aware request front: raw phone fingerprints in, routed and
//! normalized model inputs out.
//!
//! A [`LocalizeRequest`] is what a phone actually sends: raw dBm readings
//! plus its self-reported device model string. The front applies the
//! paper's heterogeneity-aware standardization (dBm in `[-100, 0]` →
//! `[0, 1]`, exactly [`safeloc_dataset::dbm_to_unit`]) and resolves the
//! device string through the [`DeviceCatalog`] to a model-variant key —
//! the HetNN mapping. Devices the catalog does not know fall back to the
//! building's default model instead of failing: serving must degrade
//! gracefully for phones the survey never saw.

use crate::registry::{ModelRegistry, ServedModel, DEFAULT_CLASS};
use safeloc_dataset::{dbm_to_unit, DeviceCatalog};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One localization query as a phone submits it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizeRequest {
    /// Building the phone believes it is in.
    pub building: usize,
    /// Self-reported device model string (free-form; resolved through the
    /// catalog, unknown models use the building default).
    pub device: String,
    /// Raw RSS readings in dBm, one per AP in building feature order.
    pub rss_dbm: Vec<f32>,
}

impl LocalizeRequest {
    /// Creates a request.
    pub fn new(building: usize, device: &str, rss_dbm: Vec<f32>) -> Self {
        Self {
            building,
            device: device.to_string(),
            rss_dbm,
        }
    }
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizeResponse {
    /// Predicted reference-point label.
    pub label: usize,
    /// Metric coordinates of the predicted RP, when the serving model
    /// knows the floorplan.
    pub position: Option<(f32, f32)>,
    /// Device class the request was routed to ([`DEFAULT_CLASS`] when the
    /// device was unknown or had no variant of its own).
    pub device_class: String,
    /// Version of the model snapshot that served the request.
    pub model_version: u64,
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model is published for the building (not even a default).
    UnknownBuilding(usize),
    /// The fingerprint's AP count differs from the serving model's input.
    WrongDimension {
        /// APs the model expects.
        expected: usize,
        /// APs the request carried.
        found: usize,
    },
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownBuilding(b) => write!(f, "no model published for building {b}"),
            ServeError::WrongDimension { expected, found } => {
                write!(f, "expected {expected} AP readings, got {found}")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A request admitted past the front: normalized features plus the exact
/// model snapshot that will serve it.
///
/// Admission pins the snapshot — this is what makes hot swaps clean: a
/// publish between admission and execution does not retarget the request.
#[derive(Debug, Clone)]
pub struct AdmittedRequest {
    /// `[0, 1]`-normalized features, one per AP.
    pub features: Vec<f32>,
    /// Resolved device class (catalog spelling, or [`DEFAULT_CLASS`]).
    pub device_class: String,
    /// The pinned model snapshot.
    pub model: Arc<ServedModel>,
}

/// The stateless admission front over a registry + device catalog.
#[derive(Debug)]
pub struct RequestFront {
    registry: Arc<ModelRegistry>,
    catalog: DeviceCatalog,
}

impl RequestFront {
    /// A front routing through `registry` with `catalog` as the HetNN
    /// device mapping.
    pub fn new(registry: Arc<ModelRegistry>, catalog: DeviceCatalog) -> Self {
        Self { registry, catalog }
    }

    /// The registry this front routes through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Admits one request: resolves the device class, pins the serving
    /// snapshot and normalizes the fingerprint.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownBuilding`] when the registry holds no model
    /// for the building, [`ServeError::WrongDimension`] when the
    /// fingerprint width does not match the resolved model.
    pub fn admit(&self, request: &LocalizeRequest) -> Result<AdmittedRequest, ServeError> {
        let class = self
            .catalog
            .canonical_name(&request.device)
            .unwrap_or(DEFAULT_CLASS);
        let model = self
            .registry
            .resolve(request.building, class)
            .ok_or(ServeError::UnknownBuilding(request.building))?;
        let expected = model.network.in_dim();
        if request.rss_dbm.len() != expected {
            return Err(ServeError::WrongDimension {
                expected,
                found: request.rss_dbm.len(),
            });
        }
        Ok(AdmittedRequest {
            features: request
                .rss_dbm
                .iter()
                .map(|&dbm| dbm_to_unit(dbm))
                .collect(),
            // The routed class is the model's own class: a device with no
            // variant of its own reports the fallback it actually used.
            device_class: model.key.device_class.clone(),
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelKey;
    use safeloc_nn::{Activation, Sequential};

    fn front_with(buildings: &[(usize, &str)]) -> RequestFront {
        let registry = Arc::new(ModelRegistry::new());
        for &(b, class) in buildings {
            registry.publish(
                ModelKey::new(b, class),
                Sequential::mlp(&[4, 6, 3], Activation::Relu, b as u64),
                None,
            );
        }
        RequestFront::new(registry, DeviceCatalog::paper())
    }

    #[test]
    fn known_device_routes_to_its_variant() {
        let front = front_with(&[(1, DEFAULT_CLASS), (1, "HTC U11")]);
        let req = LocalizeRequest::new(1, "htc u11", vec![-50.0; 4]);
        let admitted = front.admit(&req).unwrap();
        assert_eq!(admitted.device_class, "HTC U11");
        assert_eq!(admitted.model.key.device_class, "HTC U11");
    }

    #[test]
    fn unknown_device_and_unvarianted_device_fall_back_to_default() {
        let front = front_with(&[(1, DEFAULT_CLASS), (1, "HTC U11")]);
        for device in ["Pixel 9", "OnePlus 3"] {
            let admitted = front
                .admit(&LocalizeRequest::new(1, device, vec![-50.0; 4]))
                .unwrap();
            assert_eq!(admitted.device_class, DEFAULT_CLASS, "{device}");
        }
    }

    #[test]
    fn normalization_is_the_paper_standardization() {
        let front = front_with(&[(1, DEFAULT_CLASS)]);
        let req = LocalizeRequest::new(1, "Pixel 9", vec![-100.0, -50.0, 0.0, -120.0]);
        let admitted = front.admit(&req).unwrap();
        assert_eq!(admitted.features[0], 0.0);
        assert!((admitted.features[1] - 0.5).abs() < 1e-6);
        assert_eq!(admitted.features[2], 1.0);
        assert_eq!(admitted.features[3], 0.0, "below-floor readings clamp");
    }

    #[test]
    fn admission_errors_are_specific() {
        let front = front_with(&[(1, DEFAULT_CLASS)]);
        assert_eq!(
            front
                .admit(&LocalizeRequest::new(9, "x", vec![-50.0; 4]))
                .unwrap_err(),
            ServeError::UnknownBuilding(9)
        );
        assert_eq!(
            front
                .admit(&LocalizeRequest::new(1, "x", vec![-50.0; 3]))
                .unwrap_err(),
            ServeError::WrongDimension {
                expected: 4,
                found: 3
            }
        );
    }
}
