//! The training→serving bridge: an [`FlSession`](safeloc_fl::FlSession)
//! publisher that pushes every round's aggregated global model into a
//! [`ModelRegistry`].
//!
//! Attach a [`RegistryPublisher`] via
//! [`FlSessionBuilder::publisher`](safeloc_fl::FlSessionBuilder::publisher)
//! and every executed round hot-swaps the session's hardened global model
//! under the configured registry key while traffic is being served — the
//! closed training→publish→serve loop.

use crate::registry::{ModelKey, ModelRegistry};
use safeloc_fl::{ModelPublisher, RoundReport};
use safeloc_nn::NamedParams;
use std::sync::Arc;

/// Publishes every round's global model under one registry key.
///
/// The registry key must already hold a base model of the session's
/// architecture (publish the pretrained model before starting the
/// session); rounds whose parameters do not fit are counted in
/// [`RegistryPublisher::skipped`] instead of poisoning the registry — a
/// session of the wrong architecture must not take serving down.
pub struct RegistryPublisher {
    registry: Arc<ModelRegistry>,
    key: ModelKey,
    published: u64,
    skipped: u64,
}

impl RegistryPublisher {
    /// A publisher pushing into `registry` under `key`.
    pub fn new(registry: Arc<ModelRegistry>, key: ModelKey) -> Self {
        Self {
            registry,
            key,
            published: 0,
            skipped: 0,
        }
    }

    /// Rounds successfully published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Rounds skipped because their parameters did not fit the key's
    /// serving architecture.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl ModelPublisher for RegistryPublisher {
    fn publish_round(&mut self, report: &RoundReport, global: &NamedParams) {
        match self.registry.publish_params(&self.key, global) {
            Ok(_) => self.published += 1,
            Err(err) => {
                self.skipped += 1;
                eprintln!(
                    "registry publisher: skipping round {} for {}: {err}",
                    report.round, self.key
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeloc_dataset::{Building, BuildingDataset, DatasetConfig};
    use safeloc_fl::{
        Client, DefensePipeline, FlSession, Framework, SequentialFlServer, ServerConfig,
    };
    use safeloc_nn::HasParams;

    #[test]
    fn session_rounds_hot_swap_the_registry() {
        let data = BuildingDataset::generate(Building::tiny(3), &DatasetConfig::tiny(), 3);
        let mut server = SequentialFlServer::new(
            &[data.building.num_aps(), 16, data.building.num_rps()],
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny(),
        );
        server.pretrain(&data.server_train);

        let registry = Arc::new(ModelRegistry::new());
        let key = ModelKey::default_for(data.building.id);
        registry.publish(
            key.clone(),
            server.global_model().clone(),
            Some(data.building.clone()),
        );

        let rounds = 3;
        let mut session = FlSession::builder(Box::new(server))
            .clients(Client::from_dataset(&data, 1))
            .publisher(Box::new(RegistryPublisher::new(
                Arc::clone(&registry),
                key.clone(),
            )))
            .build();
        session.run(rounds);

        let served = registry.get(&key).expect("still published");
        assert_eq!(
            served.version,
            1 + rounds as u64,
            "pretrained base + one version per round"
        );
        assert_eq!(
            served.network.snapshot(),
            session.framework().global_params(),
            "registry serves the session's final GM bitwise"
        );
        assert!(
            served.geometry.is_some(),
            "geometry survives parameter publishes"
        );
    }

    #[test]
    fn arch_mismatch_rounds_are_skipped_not_fatal() {
        let data = BuildingDataset::generate(Building::tiny(4), &DatasetConfig::tiny(), 4);
        let mut server = SequentialFlServer::new(
            &[data.building.num_aps(), 16, data.building.num_rps()],
            Box::new(DefensePipeline::fedavg()),
            ServerConfig::tiny(),
        );
        server.pretrain(&data.server_train);

        // The registry key holds a model of a *different* architecture.
        let registry = Arc::new(ModelRegistry::new());
        let key = ModelKey::default_for(99);
        registry.publish(
            key.clone(),
            safeloc_nn::Sequential::mlp(&[3, 2], safeloc_nn::Activation::Relu, 0),
            None,
        );

        let mut session = FlSession::builder(Box::new(server))
            .clients(Client::from_dataset(&data, 1))
            .publisher(Box::new(RegistryPublisher::new(
                Arc::clone(&registry),
                key.clone(),
            )))
            .build();
        session.run(2);

        let served = registry.get(&key).expect("base model untouched");
        assert_eq!(served.version, 1, "mismatched rounds must not publish");
    }
}
