//! Property-based tests for the tensor and parameter algebra that the
//! federated-learning layer depends on.

use proptest::prelude::*;
use safeloc_nn::{Activation, HasParams, Matrix, NamedParams, Sequential, SparseCrossEntropyLoss};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

/// Scalar triple-loop oracle the blocked kernels are checked against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for p in 0..a.cols() {
            for j in 0..b.cols() {
                let v = out.get(i, j) + a.get(i, p) * b.get(p, j);
                out.set(i, j, v);
            }
        }
    }
    out
}

fn assert_matrices_close(lhs: &Matrix, rhs: &Matrix, tol: f32) -> Result<(), TestCaseError> {
    prop_assert_eq!(lhs.shape(), rhs.shape());
    for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
        prop_assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{} vs {}", x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(
        a in matrix_strategy(3, 5),
        b in matrix_strategy(5, 2),
    ) {
        // (A B)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn add_is_commutative(a in matrix_strategy(4, 4), b in matrix_strategy(4, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn scale_then_sum_scales_sum(a in matrix_strategy(3, 3), k in -5.0f32..5.0) {
        let lhs = a.scale(k).sum();
        let rhs = a.sum() * k;
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn l2_distance_triangle_inequality(
        a in matrix_strategy(2, 5),
        b in matrix_strategy(2, 5),
        c in matrix_strategy(2, 5),
    ) {
        let ab = a.l2_distance(&b);
        let bc = b.l2_distance(&c);
        let ac = a.l2_distance(&c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn softmax_is_a_distribution(logits in matrix_strategy(4, 6)) {
        let p = SparseCrossEntropyLoss.probabilities(&logits);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn relu_output_nonnegative(x in matrix_strategy(3, 7)) {
        let y = Activation::Relu.forward(&x);
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn named_params_mean_is_bounded_by_extremes(
        a in matrix_strategy(2, 3),
        b in matrix_strategy(2, 3),
    ) {
        let pa = NamedParams::new(vec![("w".into(), a.clone())]);
        let pb = NamedParams::new(vec![("w".into(), b.clone())]);
        let m = NamedParams::mean(&[pa, pb]);
        let mt = m.get("w").unwrap();
        for i in 0..a.len() {
            let lo = a.as_slice()[i].min(b.as_slice()[i]);
            let hi = a.as_slice()[i].max(b.as_slice()[i]);
            prop_assert!(mt.as_slice()[i] >= lo - 1e-4 && mt.as_slice()[i] <= hi + 1e-4);
        }
    }

    #[test]
    fn cosine_similarity_in_unit_range(
        a in matrix_strategy(1, 8),
        b in matrix_strategy(1, 8),
    ) {
        let pa = NamedParams::new(vec![("w".into(), a)]);
        let pb = NamedParams::new(vec![("w".into(), b)]);
        let c = pa.cosine_similarity(&pb);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c));
    }

    #[test]
    fn snapshot_load_round_trips_arbitrary_weights(
        seed in 0u64..1000,
        scale in 0.1f32..3.0,
    ) {
        let m = Sequential::mlp(&[5, 4, 3], Activation::Relu, seed);
        let scaled = m.snapshot().scale(scale);
        let mut m2 = Sequential::mlp(&[5, 4, 3], Activation::Relu, seed + 1);
        m2.load(&scaled).unwrap();
        prop_assert_eq!(m2.snapshot(), scaled);
    }

    /// The blocked `matmul_into` kernel matches the scalar triple-loop
    /// reference within 1e-5 on randomized shapes, including 0-row, 1×n
    /// and non-square cases.
    #[test]
    fn blocked_matmul_matches_naive_reference(
        m in 0usize..7,
        k in 0usize..40,
        n in 1usize..33,
        seed in 0u64..1000,
    ) {
        let a = Matrix::from_fn(m, k, |r, c| {
            (((r * 31 + c * 17) as u64 + seed) % 200) as f32 / 100.0 - 1.0
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            (((r * 13 + c * 41) as u64 + seed * 3) % 200) as f32 / 100.0 - 1.0
        });
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_matrices_close(&out, &naive_matmul(&a, &b), 1e-5)?;
    }

    /// `a · bᵀ` and `aᵀ · b` into-kernels agree with explicit-transpose
    /// naive products within 1e-5, on randomized shapes including 0-row
    /// and 1×n cases.
    #[test]
    fn transposed_kernels_match_naive_reference(
        m in 0usize..6,
        k in 1usize..40,
        r in 1usize..9,
        seed in 0u64..1000,
    ) {
        let a = Matrix::from_fn(m, k, |i, j| {
            (((i * 7 + j * 11) as u64 + seed) % 200) as f32 / 100.0 - 1.0
        });
        let b = Matrix::from_fn(r, k, |i, j| {
            (((i * 23 + j * 5) as u64 + seed * 7) % 200) as f32 / 100.0 - 1.0
        });
        let mut fast = Matrix::zeros(0, 0);
        a.matmul_transposed_into(&b, &mut fast);
        assert_matrices_close(&fast, &naive_matmul(&a, &b.transpose()), 1e-5)?;

        // aᵀ · c with c sharing a's row count.
        let c = Matrix::from_fn(m, r, |i, j| {
            (((i * 3 + j * 29) as u64 + seed * 11) % 200) as f32 / 100.0 - 1.0
        });
        let mut fast_t = Matrix::zeros(0, 0);
        a.transposed_matmul_into(&c, &mut fast_t);
        assert_matrices_close(&fast_t, &naive_matmul(&a.transpose(), &c), 1e-5)?;
    }

    /// Into-kernels reuse dirty buffers safely: results are independent of
    /// the output buffer's previous shape and contents.
    #[test]
    fn into_kernels_ignore_stale_buffer_contents(
        m in 1usize..5,
        k in 1usize..20,
        n in 1usize..20,
        stale in 0usize..50,
    ) {
        let a = Matrix::from_fn(m, k, |r, c| (r + c) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(k, n, |r, c| (r * 2 + c) as f32 * 0.125 - 1.0);
        let mut dirty = Matrix::filled(stale / 7 + 1, stale % 7 + 1, f32::NAN);
        a.matmul_into(&b, &mut dirty);
        prop_assert_eq!(dirty, a.matmul(&b));
    }

    #[test]
    fn input_gradient_is_zero_where_network_is_dead(
        seed in 0u64..100,
    ) {
        // With all-negative inputs into ReLU and zero bias the network output
        // is constant in a neighbourhood only if every first-layer unit is
        // dead; we just assert the gradient is finite and shaped correctly.
        let m = Sequential::mlp(&[4, 6, 3], Activation::Relu, seed);
        let x = Matrix::row_vector(&[0.5, -0.5, 0.25, -0.25]);
        let g = m.input_gradient(&x, &[0]);
        prop_assert_eq!(g.shape(), (1, 4));
        prop_assert!(!g.has_non_finite());
    }
}
