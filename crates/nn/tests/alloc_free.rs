//! Verifies the workspace training path's headline guarantee: after one
//! warmup step, a full `Sequential` forward+backward+optimizer step
//! performs **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! the workspace and optimizer, snapshots the allocation counter, runs more
//! steps and asserts the counter did not move.

use safeloc_nn::{Activation, Adam, Matrix, Sequential, Sgd, Workspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn paper_batch(model: &Sequential, batch: usize) -> (Matrix, Vec<usize>) {
    let x = Matrix::from_fn(batch, model.in_dim(), |r, c| {
        ((r * 31 + c * 7) % 100) as f32 / 100.0
    });
    let labels: Vec<usize> = (0..batch).map(|r| r % model.out_dim()).collect();
    (x, labels)
}

#[test]
fn classifier_step_is_allocation_free_after_warmup() {
    // The paper's global-model geometry (203→128→89→62→60).
    let mut model = Sequential::mlp(&[203, 128, 89, 62, 60], Activation::Relu, 7);
    let (x, labels) = paper_batch(&model, 32);
    let mut opt = Adam::new(1e-3);
    let mut ws = Workspace::new();

    // Warmup: shapes the workspace buffers and the Adam moment vectors.
    for _ in 0..2 {
        model.train_batch_with(&x, &labels, &mut opt, &mut ws);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        model.train_batch_with(&x, &labels, &mut opt, &mut ws);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm training step allocated {} times",
        after - before
    );
}

#[test]
fn autoencoder_step_is_allocation_free_after_warmup() {
    let mut model = Sequential::mlp(&[60, 20, 60], Activation::Sigmoid, 3);
    let x = Matrix::from_fn(16, 60, |r, c| ((r + c) % 10) as f32 / 10.0);
    let mut opt = Sgd::new(1e-2);
    let mut ws = Workspace::new();

    for _ in 0..2 {
        model.train_batch_autoencoder_with(&x, &mut opt, &mut ws);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        model.train_batch_autoencoder_with(&x, &mut opt, &mut ws);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm autoencoder step allocated {} times",
        after - before
    );
}

/// The workspace path must compute exactly the same update as the
/// allocating path — buffer reuse is an optimization, not a semantics
/// change.
#[test]
fn workspace_path_matches_allocating_path_bitwise() {
    let mut a = Sequential::mlp(&[20, 16, 8], Activation::Relu, 11);
    let mut b = a.clone();
    let (x, labels) = paper_batch(&a, 8);

    let mut opt_a = Adam::new(1e-3);
    let mut opt_b = Adam::new(1e-3);
    let mut ws = Workspace::new();

    use safeloc_nn::HasParams;
    for _ in 0..4 {
        let la = a.train_batch(&x, &labels, &mut opt_a);
        let lb = b.train_batch_with(&x, &labels, &mut opt_b, &mut ws);
        assert_eq!(la, lb, "losses diverged");
    }
    assert_eq!(a.snapshot(), b.snapshot(), "weights diverged");
}
