//! A sequential MLP: the architecture behind FEDLOC/FEDHIL's three-layer DNN
//! global models and the building block of everything else.

use crate::activation::Activation;
use crate::data::{gather_labels_into, gather_rows_into, shuffled_batches};
use crate::dense::Dense;
use crate::init::Init;
use crate::loss::{MseLoss, SparseCrossEntropyLoss};
use crate::optim::Optimizer;
use crate::params::{HasParams, NamedParams};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Row count below which batch prediction stays single-threaded — at tiny
/// batch sizes thread spawn overhead exceeds the forward-pass cost.
const PARALLEL_PREDICT_MIN_ROWS: usize = 64;

/// Training-loop configuration shared across the workspace.
///
/// The paper's server-side settings are 700 epochs at `lr = 0.001`; the
/// client-side settings are 5 epochs at `lr = 0.0001`. Learning rate lives in
/// the optimizer; this struct carries the loop shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (0 = full batch).
    pub batch_size: usize,
    /// Seed for batch shuffling.
    pub seed: u64,
}

impl TrainConfig {
    /// Creates a config.
    pub fn new(epochs: usize, batch_size: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size,
            seed,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::new(100, 32, 0)
    }
}

/// A stack of [`Dense`] layers with per-layer activations.
///
/// The final layer emits raw logits; classification uses the fused
/// [`SparseCrossEntropyLoss`]. See [`Sequential::mlp`] for the common
/// constructor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Dense>,
    activations: Vec<Activation>,
}

/// Cached forward-pass state used by the backward pass.
///
/// Reusable: [`Sequential::forward_trace_into`] reshapes the cached
/// matrices in place, so a trace that has seen a batch shape once never
/// allocates for it again.
#[derive(Debug, Clone, Default)]
pub struct ForwardTrace {
    /// `inputs[i]` is the input to layer `i`; `inputs.last()` is the final
    /// output (post-activation of the last layer).
    inputs: Vec<Matrix>,
    /// `pre[i]` is the pre-activation output of layer `i`.
    pre: Vec<Matrix>,
}

impl ForwardTrace {
    /// An empty trace ready to be filled by
    /// [`Sequential::forward_trace_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The network output for this trace.
    pub fn output(&self) -> &Matrix {
        self.inputs.last().expect("trace always holds the output")
    }
}

/// Reusable scratch buffers for one training stream.
///
/// Holds the forward trace, the flat per-tensor gradient list and the two
/// ping-pong matrices the backward pass streams gradients through. After
/// the first (warmup) step on a given batch shape, a full forward+backward
/// step through [`Sequential::train_batch_with`] performs **zero heap
/// allocations** — verified by `tests/alloc_free.rs` with a counting
/// allocator.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    trace: ForwardTrace,
    /// Flat gradients in [`HasParams`] order (`layer0.w, layer0.b, …`).
    grads: Vec<Matrix>,
    /// Gradient flowing backwards (`dL/d` current activation output).
    grad_cur: Matrix,
    /// Scratch for the layer-below gradient; swapped with `grad_cur`.
    grad_next: Matrix,
    /// Whether the last backward pass propagated through to `dL/dx` (the
    /// training steps stop at the layer-0 parameter gradients, leaving
    /// `grad_cur` holding the layer-0 pre-activation gradient instead).
    has_input_grad: bool,
}

impl Workspace {
    /// An empty workspace; buffers are shaped on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The flat gradient tensors produced by the last backward pass.
    pub fn gradients(&self) -> &[Matrix] {
        &self.grads
    }

    /// The input gradient (`dL/dx`) left by the last backward pass, or
    /// `None` if that pass skipped it — training steps
    /// ([`Sequential::train_batch_with`] and friends) stop at the layer-0
    /// parameter gradients; only [`Sequential::backward_with`] propagates
    /// through to the input.
    pub fn input_gradient(&self) -> Option<&Matrix> {
        self.has_input_grad.then_some(&self.grad_cur)
    }
}

/// Full gradient set for a [`Sequential`] model.
#[derive(Debug, Clone)]
pub struct SequentialGrads {
    /// Per-layer `(dW, db)` in layer order.
    pub layers: Vec<(Matrix, Matrix)>,
    /// Gradient with respect to the network input.
    pub input: Matrix,
}

impl SequentialGrads {
    /// Flattens into the tensor order used by [`HasParams`]
    /// (`layer0.w, layer0.b, layer1.w, …`).
    pub fn into_flat(self) -> Vec<Matrix> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for (w, b) in self.layers {
            out.push(w);
            out.push(b);
        }
        out
    }
}

impl Sequential {
    /// Builds an MLP with layer widths `dims` (e.g. `[in, h1, h2, out]`),
    /// `hidden` activation after every layer except the last (identity /
    /// logits), He initialization, and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2`.
    pub fn mlp(dims: &[usize], hidden: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        let mut activations = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            layers.push(Dense::new(w[0], w[1], Init::HeUniform, &mut rng));
        }
        for _ in 0..layers.len() - 1 {
            activations.push(hidden);
        }
        activations.push(Activation::Identity);
        Self {
            layers,
            activations,
        }
    }

    /// Builds a network from explicit layers and activations.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, the stack is empty, or consecutive layer
    /// dimensions do not chain.
    pub fn from_layers(layers: Vec<Dense>, activations: Vec<Activation>) -> Self {
        assert!(!layers.is_empty(), "empty network");
        assert_eq!(layers.len(), activations.len(), "one activation per layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "layer dimensions do not chain"
            );
        }
        Self {
            layers,
            activations,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Layer access (for tests and benches).
    pub fn layer(&self, i: usize) -> &Dense {
        &self.layers[i]
    }

    /// Forward pass returning only the output.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let mut scratch = Matrix::zeros(0, 0);
        for (layer, act) in self.layers.iter().zip(&self.activations) {
            layer.forward_into(&h, &mut scratch);
            act.forward_assign(&mut scratch);
            std::mem::swap(&mut h, &mut scratch);
        }
        h
    }

    /// Forward pass that records everything the backward pass needs.
    pub fn forward_trace(&self, x: &Matrix) -> ForwardTrace {
        let mut trace = ForwardTrace::new();
        self.forward_trace_into(x, &mut trace);
        trace
    }

    /// Forward pass into a reusable trace (allocation-free once warm).
    pub fn forward_trace_into(&self, x: &Matrix, trace: &mut ForwardTrace) {
        let depth = self.layers.len();
        trace.inputs.resize_with(depth + 1, || Matrix::zeros(0, 0));
        trace.pre.resize_with(depth, || Matrix::zeros(0, 0));
        trace.inputs[0].copy_from(x);
        for (i, (layer, act)) in self.layers.iter().zip(&self.activations).enumerate() {
            let (head, tail) = trace.inputs.split_at_mut(i + 1);
            let input = &head[i];
            let next = &mut tail[0];
            layer.forward_into(input, &mut trace.pre[i]);
            next.copy_from(&trace.pre[i]);
            act.forward_assign(next);
        }
    }

    /// Backward pass from `dL/d(output)` through the whole stack.
    pub fn backward(&self, trace: &ForwardTrace, grad_output: &Matrix) -> SequentialGrads {
        let mut ws = Workspace::new();
        ws.grad_cur.copy_from(grad_output);
        self.backward_with(trace, &mut ws);
        let mut layers = Vec::with_capacity(self.layers.len());
        for pair in ws.grads.chunks_exact(2) {
            layers.push((pair[0].clone(), pair[1].clone()));
        }
        SequentialGrads {
            layers,
            input: ws.grad_cur.clone(),
        }
    }

    /// Backward pass through workspace buffers (allocation-free once warm).
    ///
    /// On entry `ws.grad_cur` must hold `dL/d(output)` for `trace`; on exit
    /// `ws.grads` holds the flat parameter gradients and, when
    /// `need_input_grad` is set, `ws.grad_cur` the input gradient. Training
    /// steps pass `false`: the layer-0 input gradient multiplies against
    /// the widest weight matrix in the network and no optimizer reads it —
    /// only the gradient-based poisoning attacks do. The trace is borrowed
    /// separately from the workspace so [`Sequential::train_batch_with`]
    /// can split the borrows.
    fn backward_buffers(
        &self,
        trace: &ForwardTrace,
        grads: &mut Vec<Matrix>,
        grad_cur: &mut Matrix,
        grad_next: &mut Matrix,
        need_input_grad: bool,
    ) {
        let depth = self.layers.len();
        grads.resize_with(depth * 2, || Matrix::zeros(0, 0));
        for i in (0..depth).rev() {
            self.activations[i].backward_assign(&trace.pre[i], grad_cur);
            let (dw_part, db_part) = grads.split_at_mut(2 * i + 1);
            if i == 0 && !need_input_grad {
                self.layers[0].param_grads_into(
                    &trace.inputs[0],
                    grad_cur,
                    &mut dw_part[0],
                    &mut db_part[0],
                );
                break;
            }
            self.layers[i].backward_into(
                &trace.inputs[i],
                grad_cur,
                &mut dw_part[2 * i],
                &mut db_part[0],
                grad_next,
            );
            std::mem::swap(grad_cur, grad_next);
        }
    }

    /// Backward pass driven by a [`Workspace`]: on entry `ws.grad_cur`
    /// must hold `dL/d(output)` for `trace`; on exit `ws.grads` holds the
    /// flat parameter gradients and `ws.grad_cur` the input gradient.
    pub fn backward_with(&self, trace: &ForwardTrace, ws: &mut Workspace) {
        let Workspace {
            grads,
            grad_cur,
            grad_next,
            ..
        } = ws;
        self.backward_buffers(trace, grads, grad_cur, grad_next, true);
        ws.has_input_grad = true;
    }

    /// Predicted class index per row (argmax over logits).
    ///
    /// Large batches are split into row blocks classified in parallel;
    /// rows are independent, so the result is identical to the serial path
    /// for any thread count.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let rows = x.rows();
        let threads = rayon::current_num_threads();
        if rows < PARALLEL_PREDICT_MIN_ROWS || threads <= 1 || x.cols() == 0 {
            return self.forward(x).argmax_rows();
        }
        let chunk_rows = rows.div_ceil(threads).max(1);
        let cols = x.cols();
        let blocks: Vec<Vec<usize>> = x
            .as_slice()
            .par_chunks(chunk_rows * cols)
            .map(|block| {
                let block_rows = block.len() / cols;
                let sub =
                    Matrix::from_vec(block_rows, cols, block.to_vec()).expect("row-aligned block");
                self.forward(&sub).argmax_rows()
            })
            .collect();
        blocks.into_iter().flatten().collect()
    }

    /// Classification accuracy against `labels`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f32 {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        if labels.is_empty() {
            return 0.0;
        }
        let pred = self.predict(x);
        let hits = pred.iter().zip(labels).filter(|(p, y)| p == y).count();
        hits as f32 / labels.len() as f32
    }

    /// Gradient of the cross-entropy loss with respect to the *input* —
    /// the quantity every gradient-based poisoning attack (FGSM/PGD/MIM/CLB)
    /// is built from.
    pub fn input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        let mut ws = Workspace::new();
        self.forward_trace_into(x, &mut ws.trace);
        let Workspace {
            trace,
            grads,
            grad_cur,
            grad_next,
            ..
        } = &mut ws;
        SparseCrossEntropyLoss.loss_and_grad_into(trace.output(), labels, grad_cur);
        self.backward_buffers(trace, grads, grad_cur, grad_next, true);
        ws.grad_cur
    }

    /// One optimizer step on a single batch; returns the batch loss.
    ///
    /// Allocates a fresh [`Workspace`] per call; loops should hold one and
    /// use [`Sequential::train_batch_with`].
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize], opt: &mut dyn Optimizer) -> f32 {
        let mut ws = Workspace::new();
        self.train_batch_with(x, labels, opt, &mut ws)
    }

    /// One optimizer step on a single batch through a reusable workspace.
    ///
    /// Zero heap allocations once `ws` has seen the batch shape (the
    /// optimizer's state warms up on its first step the same way).
    pub fn train_batch_with(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        ws: &mut Workspace,
    ) -> f32 {
        let Workspace {
            trace,
            grads,
            grad_cur,
            grad_next,
            has_input_grad,
        } = ws;
        *has_input_grad = false;
        self.forward_trace_into(x, trace);
        let loss = SparseCrossEntropyLoss.loss_and_grad_into(trace.output(), labels, grad_cur);
        self.backward_buffers(trace, grads, grad_cur, grad_next, false);
        opt.step_stream(self, grads);
        loss
    }

    /// One optimizer step training the network to reconstruct `x` (MSE);
    /// returns the batch loss. Used by the autoencoder-based baselines
    /// (ONLAD's on-device detector, FEDLS's latent-space detector).
    pub fn train_batch_autoencoder(&mut self, x: &Matrix, opt: &mut dyn Optimizer) -> f32 {
        let mut ws = Workspace::new();
        self.train_batch_autoencoder_with(x, opt, &mut ws)
    }

    /// [`Sequential::train_batch_autoencoder`] through a reusable
    /// workspace (allocation-free once warm).
    pub fn train_batch_autoencoder_with(
        &mut self,
        x: &Matrix,
        opt: &mut dyn Optimizer,
        ws: &mut Workspace,
    ) -> f32 {
        let Workspace {
            trace,
            grads,
            grad_cur,
            grad_next,
            has_input_grad,
        } = ws;
        *has_input_grad = false;
        self.forward_trace_into(x, trace);
        let loss = MseLoss.loss(trace.output(), x);
        MseLoss.grad_into(trace.output(), x, grad_cur);
        self.backward_buffers(trace, grads, grad_cur, grad_next, false);
        opt.step_stream(self, grads);
        loss
    }

    /// Trains as an autoencoder (reconstruction target = input); returns the
    /// mean loss per epoch.
    pub fn fit_autoencoder(
        &mut self,
        x: &Matrix,
        opt: &mut dyn Optimizer,
        cfg: &TrainConfig,
    ) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut ws = Workspace::new();
        let mut bx = Matrix::zeros(0, 0);
        for _ in 0..cfg.epochs {
            let mut total = 0.0;
            let mut batches = 0;
            for batch in shuffled_batches(x.rows(), cfg.batch_size, &mut rng) {
                gather_rows_into(x, &batch, &mut bx);
                total += self.train_batch_autoencoder_with(&bx, opt, &mut ws);
                batches += 1;
            }
            history.push(if batches == 0 {
                0.0
            } else {
                total / batches as f32
            });
        }
        history
    }

    /// Per-row reconstruction error relative to the input L2 norm — the
    /// detection statistic used by the autoencoder baselines.
    ///
    /// # Panics
    ///
    /// Panics if the network's output width differs from its input width.
    pub fn relative_reconstruction_error(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(
            self.in_dim(),
            self.out_dim(),
            "not an autoencoder: {} in vs {} out",
            self.in_dim(),
            self.out_dim()
        );
        let recon = self.forward(x);
        (0..x.rows())
            .map(|r| {
                let xr = x.row(r);
                let rr = recon.row(r);
                let num: f32 = xr
                    .iter()
                    .zip(rr)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                let den: f32 = xr.iter().map(|v| v * v).sum::<f32>().sqrt();
                num / (den + 1e-9)
            })
            .collect()
    }

    /// Trains as a classifier; returns the mean loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn fit_classifier(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut dyn Optimizer,
        cfg: &TrainConfig,
    ) -> Vec<f32> {
        assert_eq!(labels.len(), x.rows(), "one label per row");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut ws = Workspace::new();
        let mut bx = Matrix::zeros(0, 0);
        let mut by = Vec::new();
        for _ in 0..cfg.epochs {
            let mut total = 0.0;
            let mut batches = 0;
            for batch in shuffled_batches(x.rows(), cfg.batch_size, &mut rng) {
                gather_rows_into(x, &batch, &mut bx);
                gather_labels_into(labels, &batch, &mut by);
                total += self.train_batch_with(&bx, &by, opt, &mut ws);
                batches += 1;
            }
            history.push(if batches == 0 {
                0.0
            } else {
                total / batches as f32
            });
        }
        history
    }
}

impl HasParams for Sequential {
    fn param_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.layers.len() * 2);
        for i in 0..self.layers.len() {
            names.push(format!("layer{i}.w"));
            names.push(format!("layer{i}.b"));
        }
        names
    }

    fn param_tensors(&self) -> Vec<&Matrix> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for l in &self.layers {
            out.push(l.weights());
            out.push(l.bias());
        }
        out
    }

    fn param_tensors_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for l in &mut self.layers {
            let (w, b) = l.parts_mut();
            out.push(w);
            out.push(b);
        }
        out
    }

    fn visit_param_tensors_mut(&mut self, f: &mut dyn FnMut(&mut Matrix)) {
        for l in &mut self.layers {
            let (w, b) = l.parts_mut();
            f(w);
            f(b);
        }
    }
}

/// Convenience: snapshot/load round-trip helper used by the FL layer.
pub fn clone_with_params(model: &Sequential, params: &NamedParams) -> Sequential {
    let mut m = model.clone();
    m.load(params)
        .expect("architecture-compatible by construction");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn xor_data() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn mlp_shapes() {
        let m = Sequential::mlp(&[10, 8, 4], Activation::Relu, 0);
        assert_eq!(m.in_dim(), 10);
        assert_eq!(m.out_dim(), 4);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.num_params(), 10 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let a = Sequential::mlp(&[4, 3, 2], Activation::Relu, 11);
        let b = Sequential::mlp(&[4, 3, 2], Activation::Relu, 11);
        assert_eq!(a, b);
        let c = Sequential::mlp(&[4, 3, 2], Activation::Relu, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut m = Sequential::mlp(&[2, 16, 2], Activation::Relu, 3);
        let mut opt = Adam::new(0.03);
        m.fit_classifier(&x, &y, &mut opt, &TrainConfig::new(400, 0, 3));
        assert_eq!(m.predict(&x), y, "XOR not learned");
        assert_eq!(m.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let m = Sequential::mlp(&[3, 5, 4], Activation::Relu, 7);
        let x = Matrix::from_rows(&[vec![0.3, -0.2, 0.9], vec![0.1, 0.8, -0.5]]);
        let labels = [1usize, 3];

        let trace = m.forward_trace(&x);
        let grad_out = SparseCrossEntropyLoss.grad(trace.output(), &labels);
        let grads = m.backward(&trace, &grad_out).into_flat();

        let loss = |m: &Sequential| SparseCrossEntropyLoss.loss(&m.forward(&x), &labels);
        let h = 1e-3;
        // Check a sample of weight entries in every tensor.
        let names = m.param_names();
        for (ti, tensor) in m.param_tensors().iter().enumerate() {
            let probes = [(0usize, 0usize), (tensor.rows() - 1, tensor.cols() - 1)];
            for &(r, c) in &probes {
                let mut mp = m.clone();
                let mut mm = m.clone();
                {
                    let t = &mut mp.param_tensors_mut()[ti];
                    let v = t.get(r, c);
                    t.set(r, c, v + h);
                }
                {
                    let t = &mut mm.param_tensors_mut()[ti];
                    let v = t.get(r, c);
                    t.set(r, c, v - h);
                }
                let num = (loss(&mp) - loss(&mm)) / (2.0 * h);
                let ana = grads[ti].get(r, c);
                assert!(
                    (num - ana).abs() < 5e-3,
                    "{} ({r},{c}): numeric {num} vs analytic {ana}",
                    names[ti]
                );
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let m = Sequential::mlp(&[3, 6, 3], Activation::Relu, 21);
        let x = Matrix::row_vector(&[0.4, -0.1, 0.7]);
        let labels = [2usize];
        let g = m.input_gradient(&x, &labels);
        let h = 1e-3;
        for c in 0..3 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.set(0, c, x.get(0, c) + h);
            xm.set(0, c, x.get(0, c) - h);
            let lp = SparseCrossEntropyLoss.loss(&m.forward(&xp), &labels);
            let lm = SparseCrossEntropyLoss.loss(&m.forward(&xm), &labels);
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (num - g.get(0, c)).abs() < 1e-3,
                "col {c}: numeric {num} vs analytic {}",
                g.get(0, c)
            );
        }
    }

    #[test]
    fn snapshot_load_round_trip() {
        let m = Sequential::mlp(&[4, 3, 2], Activation::Relu, 5);
        let snap = m.snapshot();
        assert_eq!(snap.num_params(), m.num_params());
        let mut other = Sequential::mlp(&[4, 3, 2], Activation::Relu, 99);
        assert_ne!(other.snapshot(), snap);
        other.load(&snap).unwrap();
        assert_eq!(other.snapshot(), snap);
        // Behaviour matches too.
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(m.forward(&x), other.forward(&x));
    }

    #[test]
    fn load_rejects_wrong_arch() {
        let m = Sequential::mlp(&[4, 3, 2], Activation::Relu, 5);
        let mut wrong = Sequential::mlp(&[4, 5, 2], Activation::Relu, 5);
        assert!(wrong.load(&m.snapshot()).is_err());
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = xor_data();
        let mut m = Sequential::mlp(&[2, 12, 2], Activation::Relu, 1);
        let mut opt = Adam::new(0.02);
        let hist = m.fit_classifier(&x, &y, &mut opt, &TrainConfig::new(150, 0, 1));
        assert!(hist.first().unwrap() > hist.last().unwrap());
    }

    #[test]
    fn forward_trace_output_matches_forward() {
        let m = Sequential::mlp(&[3, 4, 2], Activation::Relu, 0);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(m.forward(&x), *m.forward_trace(&x).output());
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let m = Sequential::mlp(&[3, 4, 2], Activation::Relu, 0);
        let json = serde_json::to_string(&m).unwrap();
        let back: Sequential = serde_json::from_str(&json).unwrap();
        let x = Matrix::row_vector(&[0.5, -0.5, 0.25]);
        assert_eq!(m.forward(&x), back.forward(&x));
    }
}
