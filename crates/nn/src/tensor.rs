//! Row-major `f32` matrix with the operations needed by dense networks.
//!
//! The type is deliberately small: no views, no broadcasting beyond the
//! row-bias case that dense layers need, no BLAS. Dimension mismatches in
//! arithmetic are programming errors and panic with a clear message; fallible
//! construction from user data goes through [`Matrix::from_vec`], which
//! returns a [`ShapeError`].

use crate::kernels;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing a [`Matrix`] from data whose length does
/// not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Rows requested.
    pub rows: usize,
    /// Columns requested.
    pub cols: usize,
    /// Length of the data actually supplied.
    pub len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data length {} does not match shape {}x{}",
            self.len, self.rows, self.cols
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f32`.
///
/// `Matrix` is the only tensor type in the SAFELOC stack; vectors are
/// represented as `1 x n` or `n x 1` matrices, and a batch of fingerprints as
/// a `(batch, n_aps)` matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// The empty `0 x 0` matrix — the canonical "unshaped buffer" the
    /// workspace APIs start from.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})[", self.rows, self.cols)?;
        let show = self.data.len().min(8);
        for (i, v) in self.data[..show].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > show {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but row 0 has length {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reshapes `self` to `rows x cols`, reusing the backing allocation
    /// when its capacity suffices. Contents are unspecified afterwards;
    /// callers overwrite them. This is the primitive the allocation-free
    /// training workspace is built on: after the first (warmup) pass every
    /// buffer already has the right capacity and this never allocates.
    pub fn ensure_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src` into `self`, reshaping as needed (no allocation once
    /// capacity suffices).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `out = self * rhs`, writing into a caller-owned buffer (reshaped as
    /// needed; allocation-free once warm). See [`kernels::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.ensure_shape(self.rows, rhs.cols);
        kernels::matmul_into(
            &mut out.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transposed_into(rhs, &mut out);
        out
    }

    /// `out = self * rhs^T`, writing into a caller-owned buffer. See
    /// [`kernels::matmul_transposed_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_transposed_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.ensure_shape(self.rows, rhs.rows);
        kernels::matmul_transposed_into(
            &mut out.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.rows,
        );
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn transposed_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transposed_matmul_into(rhs, &mut out);
        out
    }

    /// `out = self^T * rhs`, writing into a caller-owned buffer. See
    /// [`kernels::transposed_matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn transposed_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "transposed_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.ensure_shape(self.cols, rhs.cols);
        kernels::transposed_matmul_into(
            &mut out.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b, "add")
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b, "hadamard")
    }

    /// In-place `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self -= rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        self.assert_same_shape(rhs, "axpy");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * scalar).collect(),
        }
    }

    /// In-place `self *= scalar`.
    pub fn scale_assign(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds a `1 x cols` bias row to every row of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "bias length {} does not match {} columns",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (o, b) in row.iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Adds a `1 x cols` bias row to every row of `self`, in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "bias length {} does not match {} columns",
            bias.cols, self.cols
        );
        for row in self.data.chunks_exact_mut(self.cols.max(1)) {
            for (o, b) in row.iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// Sums each column into `out` (reshaped to `1 x cols`;
    /// allocation-free once warm).
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.ensure_shape(1, self.cols);
        out.fill(0.0);
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius (L2) norm of the matrix viewed as a flat vector.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// L2 distance between `self` and `rhs` viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l2_distance(&self, rhs: &Matrix) -> f32 {
        self.assert_same_shape(rhs, "l2_distance");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Dot product of the two matrices viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn flat_dot(&self, rhs: &Matrix) -> f32 {
        self.assert_same_shape(rhs, "flat_dot");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Index of the maximum element in row `r` (first occurrence on ties).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the matrix has zero columns.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "argmax of empty row");
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Argmax of every row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.argmax_row(r)).collect()
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Matrix {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32, op: &str) -> Matrix {
        self.assert_same_shape(rhs, op);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    #[inline]
    fn assert_same_shape(&self, rhs: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Matrix::from_vec(2, 3, vec![1.0; 5]).unwrap_err();
        assert_eq!(
            err,
            ShapeError {
                rows: 2,
                cols: 3,
                len: 5
            }
        );
        assert!(err.to_string().contains("2x3"));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transposed_matmul_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            3,
            4,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let fast = a.transposed_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_is_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 3, &[1.0, 1.0, 1.0]);
        let b = m(1, 3, &[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn bias_broadcast_adds_to_every_row() {
        let x = m(2, 3, &[0.0; 6]);
        let b = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_collapses_batch() {
        let x = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.sum_rows().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let x = m(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(x.sum(), -2.0);
        assert_eq!(x.mean(), -0.5);
        assert!((x.l2_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
        assert_eq!(x.max_abs(), 4.0);
    }

    #[test]
    fn l2_distance_is_symmetric_and_zero_on_self() {
        let a = m(1, 4, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 4, &[0.0, 2.0, 3.0, 8.0]);
        assert_eq!(a.l2_distance(&a), 0.0);
        assert!((a.l2_distance(&b) - b.l2_distance(&a)).abs() < 1e-7);
        assert!((a.l2_distance(&b) - 17.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let x = m(1, 4, &[0.0, 3.0, 3.0, 1.0]);
        assert_eq!(x.argmax_row(0), 1);
    }

    #[test]
    fn argmax_rows_per_row() {
        let x = m(2, 3, &[0.0, 1.0, 0.0, 5.0, 1.0, 0.0]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn clamp_bounds_elements() {
        let x = m(1, 3, &[-1.0, 0.5, 2.0]);
        assert_eq!(x.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut x = m(1, 2, &[1.0, 2.0]);
        assert!(!x.has_non_finite());
        x.set(0, 1, f32::NAN);
        assert!(x.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn debug_is_never_empty() {
        let x = Matrix::zeros(0, 0);
        assert!(!format!("{x:?}").is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let x = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&x).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, x);
    }
}
