//! Optimizers: plain SGD and Adam (the paper trains everything with Adam).

use crate::params::HasParams;
use crate::tensor::Matrix;

/// A source of parameter tensors streamed to an optimizer in fixed order.
///
/// Every [`HasParams`] model is a `ParamStream` (via
/// [`HasParams::visit_param_tensors_mut`]), as is a plain
/// `Vec<&mut Matrix>`. Streaming lets optimizers update parameters without
/// the caller materializing a reference `Vec` per step — one of the two
/// allocations the workspace training path eliminates.
pub trait ParamStream {
    /// Calls `f` once per parameter tensor, in the model's canonical
    /// order.
    fn visit(&mut self, f: &mut dyn FnMut(&mut Matrix));
}

impl<T: HasParams> ParamStream for T {
    fn visit(&mut self, f: &mut dyn FnMut(&mut Matrix)) {
        self.visit_param_tensors_mut(f);
    }
}

impl ParamStream for Vec<&mut Matrix> {
    fn visit(&mut self, f: &mut dyn FnMut(&mut Matrix)) {
        for p in self.iter_mut() {
            f(p);
        }
    }
}

/// A first-order optimizer over an ordered list of parameter tensors.
///
/// The parameter order must be stable across calls — optimizers with state
/// (Adam) key their moment estimates by position. Models expose their
/// parameters in a fixed order via [`crate::HasParams`].
pub trait Optimizer {
    /// Applies one update step to parameters streamed by `params`
    /// (allocation-free once warm).
    ///
    /// # Panics
    ///
    /// Panics if the stream and `grads` differ in length or any pair
    /// differs in shape, or (for stateful optimizers) if shapes changed
    /// between calls.
    fn step_stream(&mut self, params: &mut dyn ParamStream, grads: &[Matrix]);

    /// Applies one update step to an explicit parameter list.
    ///
    /// # Panics
    ///
    /// As [`Optimizer::step_stream`].
    fn step(&mut self, mut params: Vec<&mut Matrix>, grads: &[Matrix]) {
        self.step_stream(&mut params, grads);
    }

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used for the reduced client-side rate).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent: `p -= lr * g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step_stream(&mut self, params: &mut dyn ParamStream, grads: &[Matrix]) {
        let lr = self.lr;
        let mut i = 0;
        params.visit(&mut |p| {
            assert!(i < grads.len(), "params/grads length mismatch");
            p.axpy(-lr, &grads[i]);
            i += 1;
        });
        assert_eq!(i, grads.len(), "params/grads length mismatch");
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moment estimates.
///
/// The paper's configuration is `lr = 0.001` for server-side training and
/// `lr = 0.0001` for lightweight client-side updates; betas and epsilon are
/// the standard defaults.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyperparameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Clears the moment estimates (e.g. when re-using the optimizer for a
    /// fresh model of the same shape).
    pub fn reset_state(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

impl Optimizer for Adam {
    fn step_stream(&mut self, params: &mut dyn ParamStream, grads: &[Matrix]) {
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| vec![0.0; g.len()]).collect();
            self.v = grads.iter().map(|g| vec![0.0; g.len()]).collect();
        }
        assert_eq!(self.m.len(), grads.len(), "parameter count changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (moments_m, moments_v) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        params.visit(&mut |p| {
            assert!(idx < grads.len(), "params/grads length mismatch");
            let g = &grads[idx];
            let m = &mut moments_m[idx];
            let v = &mut moments_v[idx];
            assert_eq!(p.shape(), g.shape(), "param/grad shape mismatch");
            assert_eq!(p.len(), m.len(), "parameter shape changed between steps");
            let ps = p.as_mut_slice();
            let gs = g.as_slice();
            for i in 0..ps.len() {
                m[i] = beta1 * m[i] + (1.0 - beta1) * gs[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * gs[i] * gs[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                ps[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
        assert_eq!(idx, grads.len(), "params/grads length mismatch");
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Matrix) -> Matrix {
        // L = sum(p^2) => dL/dp = 2p
        p.scale(2.0)
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut p = Matrix::row_vector(&[5.0, -3.0]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quadratic_grad(&p);
            opt.step(vec![&mut p], &[g]);
        }
        assert!(p.l2_norm() < 1e-3, "did not converge: {p:?}");
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut p = Matrix::row_vector(&[5.0, -3.0]);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = quadratic_grad(&p);
            opt.step(vec![&mut p], &[g]);
        }
        assert!(p.l2_norm() < 1e-2, "did not converge: {p:?}");
    }

    #[test]
    fn adam_handles_sparse_gradient_scales() {
        // Ill-conditioned quadratic: Adam should still make progress on the
        // shallow direction thanks to per-coordinate scaling.
        let mut p = Matrix::row_vector(&[1.0, 1.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let g = Matrix::row_vector(&[2.0 * p.get(0, 0) * 100.0, 2.0 * p.get(0, 1) * 0.01]);
            opt.step(vec![&mut p], &[g]);
        }
        assert!(p.get(0, 0).abs() < 1e-2);
        assert!(
            p.get(0, 1).abs() < 0.5,
            "shallow direction made no progress"
        );
    }

    #[test]
    fn first_adam_step_is_lr_sized() {
        // With bias correction the very first step is ~lr * sign(g).
        let mut p = Matrix::row_vector(&[0.0]);
        let mut opt = Adam::new(0.1);
        let g = Matrix::row_vector(&[3.7]);
        opt.step(vec![&mut p], &[g]);
        assert!((p.get(0, 0) + 0.1).abs() < 1e-4, "got {}", p.get(0, 0));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut a = Adam::new(0.001);
        assert_eq!(a.learning_rate(), 0.001);
        a.set_learning_rate(0.0001);
        assert_eq!(a.learning_rate(), 0.0001);
        assert_eq!(a.steps(), 0);
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut p = Matrix::row_vector(&[1.0]);
        let mut opt = Adam::new(0.1);
        opt.step(vec![&mut p], &[Matrix::row_vector(&[1.0])]);
        assert_eq!(opt.steps(), 1);
        opt.reset_state();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "params/grads length mismatch")]
    fn step_validates_lengths() {
        let mut p = Matrix::row_vector(&[1.0]);
        Sgd::new(0.1).step(vec![&mut p], &[]);
    }
}
