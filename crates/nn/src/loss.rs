//! Loss functions: mean-squared error (autoencoder reconstruction) and
//! sparse categorical cross-entropy (reference-point classification).
//!
//! Both losses average over *all* elements / rows of the batch, so gradients
//! are already batch-normalized and learning rates transfer across batch
//! sizes.

use crate::tensor::Matrix;

/// Mean-squared-error loss, `mean((pred - target)^2)` over every element.
///
/// The paper trains the fused network's autoencoder with MSE and uses the
/// same quantity (per sample) as the reconstruction error that drives poison
/// detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MseLoss;

impl MseLoss {
    /// Scalar loss.
    ///
    /// # Panics
    ///
    /// Panics if `pred` and `target` have different shapes.
    pub fn loss(&self, pred: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(pred.shape(), target.shape(), "mse loss shape mismatch");
        let sum: f32 = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| (p - t) * (p - t))
            .sum();
        sum / pred.len().max(1) as f32
    }

    /// Gradient `dL/dpred = 2 (pred - target) / n`.
    ///
    /// # Panics
    ///
    /// Panics if `pred` and `target` have different shapes.
    pub fn grad(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.grad_into(pred, target, &mut out);
        out
    }

    /// [`MseLoss::grad`] into a caller-owned buffer (allocation-free once
    /// warm).
    ///
    /// # Panics
    ///
    /// Panics if `pred` and `target` have different shapes.
    pub fn grad_into(&self, pred: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(pred.shape(), target.shape(), "mse grad shape mismatch");
        let scale = 2.0 / pred.len().max(1) as f32;
        out.ensure_shape(pred.rows(), pred.cols());
        for ((o, &p), &t) in out
            .as_mut_slice()
            .iter_mut()
            .zip(pred.as_slice())
            .zip(target.as_slice())
        {
            *o = (p - t) * scale;
        }
    }

    /// Per-row mean-squared error, one value per batch row.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn per_row(&self, pred: &Matrix, target: &Matrix) -> Vec<f32> {
        assert_eq!(pred.shape(), target.shape(), "per_row shape mismatch");
        (0..pred.rows())
            .map(|r| {
                let p = pred.row(r);
                let t = target.row(r);
                p.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / p.len().max(1) as f32
            })
            .collect()
    }
}

/// Sparse categorical cross-entropy over logits, fused with softmax.
///
/// Labels are class indices. The loss is the mean negative log-likelihood
/// over the batch; the gradient with respect to the logits is the numerically
/// friendly `softmax(logits) - onehot(labels)` divided by the batch size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseCrossEntropyLoss;

impl SparseCrossEntropyLoss {
    /// Row-wise softmax of `logits` (numerically stabilized).
    pub fn probabilities(&self, logits: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.probabilities_into(logits, &mut out);
        out
    }

    /// Row-wise softmax into a caller-owned buffer (allocation-free once
    /// warm).
    pub fn probabilities_into(&self, logits: &Matrix, out: &mut Matrix) {
        out.copy_from(logits);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    /// Mean negative log-likelihood of `labels` under `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or any label is out of
    /// range.
    pub fn loss(&self, logits: &Matrix, labels: &[usize]) -> f32 {
        assert_eq!(labels.len(), logits.rows(), "one label per row required");
        let probs = self.probabilities(logits);
        let mut total = 0.0;
        for (r, &y) in labels.iter().enumerate() {
            assert!(
                y < logits.cols(),
                "label {y} out of range {}",
                logits.cols()
            );
            total -= probs.get(r, y).max(1e-12).ln();
        }
        total / labels.len().max(1) as f32
    }

    /// Gradient `dL/dlogits = (softmax - onehot) / batch`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or any label is out of
    /// range.
    pub fn grad(&self, logits: &Matrix, labels: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.loss_and_grad_into(logits, labels, &mut out);
        out
    }

    /// Computes the mean NLL **and** writes `dL/dlogits` into `grad` in one
    /// softmax pass — the fused hot-path variant used by the training
    /// workspace (the separate `loss` + `grad` calls each ran their own
    /// softmax).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or any label is out of
    /// range.
    pub fn loss_and_grad_into(&self, logits: &Matrix, labels: &[usize], grad: &mut Matrix) -> f32 {
        assert_eq!(labels.len(), logits.rows(), "one label per row required");
        self.probabilities_into(logits, grad);
        let batch = labels.len().max(1) as f32;
        let inv_batch = 1.0 / batch;
        let mut total = 0.0;
        for (r, &y) in labels.iter().enumerate() {
            assert!(
                y < logits.cols(),
                "label {y} out of range {}",
                logits.cols()
            );
            let row = grad.row_mut(r);
            total -= row[y].max(1e-12).ln();
            row[y] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_batch;
            }
        }
        total / batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let x = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(MseLoss.loss(&x, &x), 0.0);
        assert!(MseLoss.grad(&x, &x).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_matches_hand_computation() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let t = Matrix::row_vector(&[0.0, 4.0]);
        // ((1)^2 + (-2)^2) / 2 = 2.5
        assert!((MseLoss.loss(&p, &t) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn mse_grad_matches_finite_differences() {
        let p = Matrix::row_vector(&[0.3, -0.7, 1.1]);
        let t = Matrix::row_vector(&[0.0, 0.5, 1.0]);
        let g = MseLoss.grad(&p, &t);
        let h = 1e-3;
        for c in 0..3 {
            let mut pp = p.clone();
            let mut pm = p.clone();
            pp.set(0, c, p.get(0, c) + h);
            pm.set(0, c, p.get(0, c) - h);
            let num = (MseLoss.loss(&pp, &t) - MseLoss.loss(&pm, &t)) / (2.0 * h);
            assert!((num - g.get(0, c)).abs() < 1e-3);
        }
    }

    #[test]
    fn per_row_isolates_rows() {
        let p = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 0.0]]);
        let t = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.0]]);
        let rows = MseLoss.per_row(&p, &t);
        assert_eq!(rows, vec![0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = SparseCrossEntropyLoss.probabilities(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = Matrix::row_vector(&[1001.0, 1002.0, 1003.0]);
        let pa = SparseCrossEntropyLoss.probabilities(&a);
        let pb = SparseCrossEntropyLoss.probabilities(&b);
        for c in 0..3 {
            assert!((pa.get(0, c) - pb.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Matrix::row_vector(&[10.0, -10.0]);
        assert!(SparseCrossEntropyLoss.loss(&logits, &[0]) < 1e-3);
        assert!(SparseCrossEntropyLoss.loss(&logits, &[1]) > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::row_vector(&[0.0; 4]);
        let l = SparseCrossEntropyLoss.loss(&logits, &[2]);
        assert!((l - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_grad_matches_finite_differences() {
        let logits = Matrix::from_rows(&[vec![0.2, -0.5, 1.3], vec![0.9, 0.1, -0.4]]);
        let labels = [2usize, 0];
        let g = SparseCrossEntropyLoss.grad(&logits, &labels);
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                let mut lm = logits.clone();
                lp.set(r, c, logits.get(r, c) + h);
                lm.set(r, c, logits.get(r, c) - h);
                let num = (SparseCrossEntropyLoss.loss(&lp, &labels)
                    - SparseCrossEntropyLoss.loss(&lm, &labels))
                    / (2.0 * h);
                assert!(
                    (num - g.get(r, c)).abs() < 1e-3,
                    "({r},{c}): numeric {num} vs analytic {}",
                    g.get(r, c)
                );
            }
        }
    }

    #[test]
    fn ce_grad_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let g = SparseCrossEntropyLoss.grad(&logits, &[1]);
        let s: f32 = g.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range 3")]
    fn ce_rejects_out_of_range_label() {
        let logits = Matrix::row_vector(&[0.0, 0.0, 0.0]);
        let _ = SparseCrossEntropyLoss.loss(&logits, &[5]);
    }
}
