//! Elementwise activation functions with explicit backward passes.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// An elementwise activation function.
///
/// The backward pass takes the layer's *pre-activation* input and the
/// gradient flowing from above, returning the gradient with respect to the
/// pre-activation values. Softmax is intentionally absent: classification
/// heads emit logits and use the fused
/// [`SparseCrossEntropyLoss`](crate::SparseCrossEntropyLoss).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = max(0, x)` — used by every layer in the paper's models.
    Relu,
    /// `f(x) = x` for `x > 0`, `alpha * x` otherwise.
    LeakyRelu(f32),
    /// Logistic sigmoid, used by the ONLAD-style online autoencoder.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to every element of `x`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.forward_assign(&mut out);
        out
    }

    /// Applies the activation in place — the hot-path variant used by the
    /// allocation-free training workspace.
    pub fn forward_assign(&self, x: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => x.map_assign(|v| v.max(0.0)),
            Activation::LeakyRelu(a) => {
                let a = *a;
                x.map_assign(move |v| if v > 0.0 { v } else { a * v });
            }
            Activation::Sigmoid => x.map_assign(sigmoid),
            Activation::Tanh => x.map_assign(f32::tanh),
        }
    }

    /// Gradient with respect to the pre-activation input.
    ///
    /// `pre` is the matrix that was passed to [`Activation::forward`] and
    /// `grad_out` is `dL/d(forward(pre))`.
    ///
    /// # Panics
    ///
    /// Panics if `pre` and `grad_out` have different shapes.
    pub fn backward(&self, pre: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut grad = grad_out.clone();
        self.backward_assign(pre, &mut grad);
        grad
    }

    /// Multiplies `grad` by the activation derivative at `pre`, in place —
    /// no mask matrix is materialized.
    ///
    /// # Panics
    ///
    /// Panics if `pre` and `grad` have different shapes.
    pub fn backward_assign(&self, pre: &Matrix, grad: &mut Matrix) {
        assert_eq!(
            pre.shape(),
            grad.shape(),
            "activation backward shape mismatch"
        );
        let pre = pre.as_slice();
        let grad = grad.as_mut_slice();
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (g, &p) in grad.iter_mut().zip(pre) {
                    if p <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::LeakyRelu(a) => {
                let a = *a;
                for (g, &p) in grad.iter_mut().zip(pre) {
                    if p <= 0.0 {
                        *g *= a;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &p) in grad.iter_mut().zip(pre) {
                    let s = sigmoid(p);
                    *g *= s * (1.0 - s);
                }
            }
            Activation::Tanh => {
                for (g, &p) in grad.iter_mut().zip(pre) {
                    let t = p.tanh();
                    *g *= 1.0 - t * t;
                }
            }
        }
    }
}

#[inline]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(act: Activation, x: f32) -> f32 {
        let h = 1e-3;
        let a = act.forward(&Matrix::row_vector(&[x + h]));
        let b = act.forward(&Matrix::row_vector(&[x - h]));
        (a.get(0, 0) - b.get(0, 0)) / (2.0 * h)
    }

    #[test]
    fn relu_forward() {
        let x = Matrix::row_vector(&[-1.0, 0.0, 2.0]);
        assert_eq!(Activation::Relu.forward(&x).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_forward() {
        let x = Matrix::row_vector(&[-2.0, 3.0]);
        let y = Activation::LeakyRelu(0.1).forward(&x);
        assert!((y.get(0, 0) + 0.2).abs() < 1e-6);
        assert_eq!(y.get(0, 1), 3.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let x = Matrix::row_vector(&[-50.0, 0.0, 50.0]);
        let y = Activation::Sigmoid.forward(&x);
        assert!(y.get(0, 0) < 1e-6);
        assert!((y.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(y.get(0, 2) > 1.0 - 1e-6);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let points = [-1.5f32, -0.3, 0.4, 2.0];
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu(0.05),
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            for &p in &points {
                let pre = Matrix::row_vector(&[p]);
                let ones = Matrix::row_vector(&[1.0]);
                let analytic = act.backward(&pre, &ones).get(0, 0);
                let numeric = finite_diff(act, p);
                assert!(
                    (analytic - numeric).abs() < 1e-2,
                    "{act:?} at {p}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn backward_scales_with_upstream_gradient() {
        let pre = Matrix::row_vector(&[2.0, -2.0]);
        let g = Matrix::row_vector(&[3.0, 3.0]);
        let out = Activation::Relu.backward(&pre, &g);
        assert_eq!(out.as_slice(), &[3.0, 0.0]);
    }
}
