//! Weight initialization schemes.

use crate::tensor::Matrix;
use rand::Rng;

/// Weight initialization scheme for dense layers.
///
/// The SAFELOC models use ReLU activations throughout, so [`Init::HeUniform`]
/// is the default; [`Init::XavierUniform`] suits the sigmoid/tanh layers in
/// some baselines.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// He/Kaiming uniform: `U(-sqrt(6/fan_in), sqrt(6/fan_in))`.
    #[default]
    HeUniform,
    /// Xavier/Glorot uniform: `U(-sqrt(6/(fan_in+fan_out)), ...)`.
    XavierUniform,
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Materializes a `rows x cols` matrix under this scheme.
    ///
    /// For the purposes of fan computation, `rows` is treated as `fan_in` and
    /// `cols` as `fan_out`, matching the `(in_dim, out_dim)` weight layout of
    /// [`crate::Dense`].
    pub fn matrix(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let bound = match self {
            Init::HeUniform => (6.0 / rows.max(1) as f32).sqrt(),
            Init::XavierUniform => (6.0 / (rows + cols).max(1) as f32).sqrt(),
            Init::Uniform(a) => a.abs(),
            Init::Zeros => return Matrix::zeros(rows, cols),
        };
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Init::Zeros.matrix(3, 4, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn he_uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let fan_in = 24;
        let bound = (6.0 / fan_in as f32).sqrt();
        let m = Init::HeUniform.matrix(fan_in, 16, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        // Not degenerate: values actually spread out.
        assert!(m.max_abs() > bound * 0.5);
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let (fi, fo) = (10, 30);
        let bound = (6.0 / (fi + fo) as f32).sqrt();
        let m = Init::XavierUniform.matrix(fi, fo, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Init::HeUniform.matrix(5, 5, &mut StdRng::seed_from_u64(42));
        let b = Init::HeUniform.matrix(5, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_uses_abs_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Init::Uniform(-0.5).matrix(4, 4, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
    }
}
