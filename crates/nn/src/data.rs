//! Mini-batch utilities shared by every training loop in the workspace.

use crate::tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Splits `0..n` into shuffled batches of at most `batch_size` indices.
///
/// The final batch may be smaller. With `batch_size == 0` a single batch
/// containing everything is returned (full-batch training).
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    if batch_size == 0 || batch_size >= n {
        return if idx.is_empty() {
            Vec::new()
        } else {
            vec![idx]
        };
    }
    idx.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Gathers the rows of `x` at `indices` into a new matrix.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_rows(x: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    gather_rows_into(x, indices, &mut out);
    out
}

/// Gathers the rows of `x` at `indices` into a caller-owned buffer
/// (allocation-free once warm) — the per-batch hot path of every training
/// loop.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_rows_into(x: &Matrix, indices: &[usize], out: &mut Matrix) {
    out.ensure_shape(indices.len(), x.cols());
    for (dst, &i) in out
        .as_mut_slice()
        .chunks_exact_mut(x.cols().max(1))
        .zip(indices)
    {
        dst.copy_from_slice(x.row(i));
    }
}

/// Gathers labels at `indices`.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_labels(labels: &[usize], indices: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    gather_labels_into(labels, indices, &mut out);
    out
}

/// Gathers labels at `indices` into a caller-owned buffer (allocation-free
/// once warm).
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_labels_into(labels: &[usize], indices: &[usize], out: &mut Vec<usize>) {
    out.clear();
    out.extend(indices.iter().map(|&i| labels[i]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_cover_all_indices_exactly_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let batches = shuffled_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_batch_size_means_full_batch() {
        let mut rng = StdRng::seed_from_u64(3);
        let batches = shuffled_batches(5, 0, &mut rng);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 5);
    }

    #[test]
    fn empty_input_gives_no_batches() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(shuffled_batches(0, 4, &mut rng).is_empty());
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn gather_labels_selects_in_order() {
        assert_eq!(gather_labels(&[10, 20, 30], &[2, 2, 0]), vec![30, 30, 10]);
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let a = shuffled_batches(20, 7, &mut StdRng::seed_from_u64(5));
        let b = shuffled_batches(20, 7, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
