//! Register-blocked, autovectorization-friendly matrix kernels.
//!
//! These slice-level kernels are the only place in the workspace that
//! multiplies matrices; [`Matrix`](crate::Matrix) methods and every layer
//! above them route here. Three design rules, all driven by profiles of the
//! paper-sized (203→128→89→62→60) training step on AVX2/AVX-512 hardware:
//!
//! 1. **Write into caller-owned buffers.** The seed implementation
//!    allocated (and zeroed) a fresh output for every product; at batch 32
//!    that is three allocations per layer per step. Every kernel here takes
//!    `out: &mut [f32]` so the training loop can run allocation-free.
//! 2. **Register-block the output.** [`matmul_into`] computes a 4-row ×
//!    4-k block per pass: 16 independent FMA streams per loaded `b` row,
//!    which amortizes loads across rows (the seed's one-row-at-a-time loop
//!    was load-port bound) and breaks the FMA latency chain. The
//!    dot-product kernel ([`matmul_transposed_into`]) computes four output
//!    columns per pass for the same reason.
//! 3. **Block columns for L1.** Column ranges are walked in `NC`-sized
//!    blocks so the four active `b` rows and the output block stay
//!    L1-resident across the reduction.
//!
//! The seed kernel's `a == 0.0` skip is deliberately gone: it helped only
//! on artificially sparse inputs and costs a branch per multiply on the
//! dense activations real training produces.
//!
//! Measured against the preserved seed loops (`safeloc_bench::naive`) at
//! batch 32 on the paper shapes, these kernels run 1.8–2.6× faster; see
//! `BENCH_nn.json` for the current numbers.

/// Column block size (floats). Four `b` row blocks (4 × 128 × 4 B = 2 KiB)
/// plus four output row blocks stay comfortably L1-resident.
const NC: usize = 128;

/// Minimum row count for the packed-`b` path: with fewer output row
/// blocks, a packed column block is reused too few times to pay for the
/// copy.
const PACK_MIN_ROWS: usize = 16;

/// Minimum `b` element count for the packed-`b` path: small `b` operands
/// are L1-resident as-is and packing is pure overhead.
const PACK_MIN_B: usize = 4096;

thread_local! {
    /// Reusable packing scratch for [`matmul_into`]'s large-shape path.
    /// Distinct from [`TRANSPOSE_SCRATCH`], which is still borrowed when
    /// the transposed wrappers call back into `matmul_into`.
    static PACK_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// `out[m×n] = a[m×k] · b[k×n]`, accumulating from zero.
///
/// Large shapes (`m ≥ 16` rows and `k·n ≥ 4096` `b` elements) take a
/// packed path: each `NC`-column block of `b` is copied once into a
/// contiguous thread-local scratch and reused across every output row
/// block, turning the inner loop's four `n`-strided `b` row reads into
/// sequential ones. The packed path reads the same values and runs the
/// same per-element FMA order as the direct path, so results are bitwise
/// identical (pinned by `packed_path_is_bitwise_identical`).
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths do not match the shapes.
pub fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "lhs size mismatch");
    debug_assert_eq!(b.len(), k * n, "rhs size mismatch");
    debug_assert_eq!(out.len(), m * n, "out size mismatch");
    out.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    if m >= PACK_MIN_ROWS && k * n >= PACK_MIN_B {
        PACK_SCRATCH.with(|cell| matmul_into_packed(out, a, b, m, k, n, &mut cell.borrow_mut()));
    } else {
        matmul_into_direct(out, a, b, m, k, n);
    }
}

/// The direct kernel: `b` rows read in place, `n`-strided per column
/// block. Optimal while `b` fits in L1; the oracle the packed path is
/// pinned against.
fn matmul_into_direct(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    // Main loop: 4 output rows × 4 reduction steps per pass.
    while i + 4 <= m {
        let (ar0, ar1) = (&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]);
        let (ar2, ar3) = (&a[(i + 2) * k..(i + 3) * k], &a[(i + 3) * k..(i + 4) * k]);
        for j0 in (0..n).step_by(NC) {
            let jlen = NC.min(n - j0);
            // Split the four output rows into disjoint mutable windows.
            let (head01, tail23) = out.split_at_mut((i + 2) * n);
            let (head0, tail1) = head01.split_at_mut((i + 1) * n);
            let (head2, tail3) = tail23.split_at_mut(n);
            let o0 = &mut head0[i * n + j0..i * n + j0 + jlen];
            let o1 = &mut tail1[j0..j0 + jlen];
            let o2 = &mut head2[j0..j0 + jlen];
            let o3 = &mut tail3[j0..j0 + jlen];
            let mut kk = 0;
            while kk + 4 <= k {
                let b0 = &b[kk * n + j0..kk * n + j0 + jlen];
                let b1 = &b[(kk + 1) * n + j0..(kk + 1) * n + j0 + jlen];
                let b2 = &b[(kk + 2) * n + j0..(kk + 2) * n + j0 + jlen];
                let b3 = &b[(kk + 3) * n + j0..(kk + 3) * n + j0 + jlen];
                for j in 0..jlen {
                    let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                    o0[j] += ar0[kk] * v0 + ar0[kk + 1] * v1 + ar0[kk + 2] * v2 + ar0[kk + 3] * v3;
                    o1[j] += ar1[kk] * v0 + ar1[kk + 1] * v1 + ar1[kk + 2] * v2 + ar1[kk + 3] * v3;
                    o2[j] += ar2[kk] * v0 + ar2[kk + 1] * v1 + ar2[kk + 2] * v2 + ar2[kk + 3] * v3;
                    o3[j] += ar3[kk] * v0 + ar3[kk + 1] * v1 + ar3[kk + 2] * v2 + ar3[kk + 3] * v3;
                }
                kk += 4;
            }
            while kk < k {
                let b0 = &b[kk * n + j0..kk * n + j0 + jlen];
                for j in 0..jlen {
                    let v = b0[j];
                    o0[j] += ar0[kk] * v;
                    o1[j] += ar1[kk] * v;
                    o2[j] += ar2[kk] * v;
                    o3[j] += ar3[kk] * v;
                }
                kk += 1;
            }
        }
        i += 4;
    }
    // Row tail (< 4 rows): one output row, 4-wide reduction unroll.
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        for j0 in (0..n).step_by(NC) {
            let jlen = NC.min(n - j0);
            let o_row = &mut out[i * n + j0..i * n + j0 + jlen];
            let mut kk = 0;
            while kk + 4 <= k {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let b0 = &b[kk * n + j0..kk * n + j0 + jlen];
                let b1 = &b[(kk + 1) * n + j0..(kk + 1) * n + j0 + jlen];
                let b2 = &b[(kk + 2) * n + j0..(kk + 2) * n + j0 + jlen];
                let b3 = &b[(kk + 3) * n + j0..(kk + 3) * n + j0 + jlen];
                for j in 0..jlen {
                    o_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
                kk += 4;
            }
            while kk < k {
                let av = a_row[kk];
                let b_row = &b[kk * n + j0..kk * n + j0 + jlen];
                for j in 0..jlen {
                    o_row[j] += av * b_row[j];
                }
                kk += 1;
            }
        }
        i += 1;
    }
}

/// The packed kernel: column blocks outermost, each `k × jlen` slab of
/// `b` copied contiguous (`scratch[kk·jlen + j]`) once and then swept by
/// every output row block. Same loads, same FMA expressions, same
/// per-element accumulation order as [`matmul_into_direct`] — only the
/// `b` addressing changes — so the two are bitwise interchangeable.
fn matmul_into_packed(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
) {
    for j0 in (0..n).step_by(NC) {
        let jlen = NC.min(n - j0);
        scratch.resize(k * jlen, 0.0);
        for kk in 0..k {
            scratch[kk * jlen..(kk + 1) * jlen]
                .copy_from_slice(&b[kk * n + j0..kk * n + j0 + jlen]);
        }
        let bp: &[f32] = scratch;
        let mut i = 0;
        // Main loop: 4 output rows × 4 reduction steps per pass.
        while i + 4 <= m {
            let (ar0, ar1) = (&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]);
            let (ar2, ar3) = (&a[(i + 2) * k..(i + 3) * k], &a[(i + 3) * k..(i + 4) * k]);
            // Split the four output rows into disjoint mutable windows.
            let (head01, tail23) = out.split_at_mut((i + 2) * n);
            let (head0, tail1) = head01.split_at_mut((i + 1) * n);
            let (head2, tail3) = tail23.split_at_mut(n);
            let o0 = &mut head0[i * n + j0..i * n + j0 + jlen];
            let o1 = &mut tail1[j0..j0 + jlen];
            let o2 = &mut head2[j0..j0 + jlen];
            let o3 = &mut tail3[j0..j0 + jlen];
            let mut kk = 0;
            while kk + 4 <= k {
                let b0 = &bp[kk * jlen..(kk + 1) * jlen];
                let b1 = &bp[(kk + 1) * jlen..(kk + 2) * jlen];
                let b2 = &bp[(kk + 2) * jlen..(kk + 3) * jlen];
                let b3 = &bp[(kk + 3) * jlen..(kk + 4) * jlen];
                for j in 0..jlen {
                    let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                    o0[j] += ar0[kk] * v0 + ar0[kk + 1] * v1 + ar0[kk + 2] * v2 + ar0[kk + 3] * v3;
                    o1[j] += ar1[kk] * v0 + ar1[kk + 1] * v1 + ar1[kk + 2] * v2 + ar1[kk + 3] * v3;
                    o2[j] += ar2[kk] * v0 + ar2[kk + 1] * v1 + ar2[kk + 2] * v2 + ar2[kk + 3] * v3;
                    o3[j] += ar3[kk] * v0 + ar3[kk + 1] * v1 + ar3[kk + 2] * v2 + ar3[kk + 3] * v3;
                }
                kk += 4;
            }
            while kk < k {
                let b0 = &bp[kk * jlen..(kk + 1) * jlen];
                for j in 0..jlen {
                    let v = b0[j];
                    o0[j] += ar0[kk] * v;
                    o1[j] += ar1[kk] * v;
                    o2[j] += ar2[kk] * v;
                    o3[j] += ar3[kk] * v;
                }
                kk += 1;
            }
            i += 4;
        }
        // Row tail (< 4 rows): one output row, 4-wide reduction unroll.
        while i < m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n + j0..i * n + j0 + jlen];
            let mut kk = 0;
            while kk + 4 <= k {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let b0 = &bp[kk * jlen..(kk + 1) * jlen];
                let b1 = &bp[(kk + 1) * jlen..(kk + 2) * jlen];
                let b2 = &bp[(kk + 2) * jlen..(kk + 3) * jlen];
                let b3 = &bp[(kk + 3) * jlen..(kk + 4) * jlen];
                for j in 0..jlen {
                    o_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
                kk += 4;
            }
            while kk < k {
                let av = a_row[kk];
                let b_row = &bp[kk * jlen..(kk + 1) * jlen];
                for j in 0..jlen {
                    o_row[j] += av * b_row[j];
                }
                kk += 1;
            }
            i += 1;
        }
    }
}

/// Tile edge for the blocked transpose in [`matmul_transposed_into`]:
/// a 32×32 f32 tile (4 KiB) keeps both the source rows and the destination
/// columns cache-resident while swapping.
const TRANSPOSE_TILE: usize = 32;

thread_local! {
    /// Reusable transpose scratch for [`matmul_transposed_into`]. Held per
    /// thread so parallel client training never contends, and retained
    /// across calls so the warm training step stays allocation-free.
    static TRANSPOSE_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// `out[m×r] = a[m×k] · b[r×k]ᵀ`.
///
/// Dot-product formulations of this product (the seed's approach) are
/// latency-bound: every output element walks a full row pair with one
/// accumulator chain, and profiles put them ~6× behind the register-blocked
/// [`matmul_into`] at equal FLOPs. So this kernel materializes `bᵀ` once
/// into a thread-local tile-transposed scratch — an `O(r·k)` cost that is
/// `batch`× smaller than the `O(m·k·r)` product — and runs the fast kernel.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths do not match the shapes.
pub fn matmul_transposed_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, r: usize) {
    debug_assert_eq!(a.len(), m * k, "lhs size mismatch");
    debug_assert_eq!(b.len(), r * k, "rhs size mismatch");
    debug_assert_eq!(out.len(), m * r, "out size mismatch");
    if m == 0 || r == 0 {
        out.fill(0.0);
        return;
    }
    TRANSPOSE_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(k * r, 0.0);
        // Blocked transpose: b (r×k) -> scratch (k×r).
        for i0 in (0..r).step_by(TRANSPOSE_TILE) {
            let i_end = (i0 + TRANSPOSE_TILE).min(r);
            for j0 in (0..k).step_by(TRANSPOSE_TILE) {
                let j_end = (j0 + TRANSPOSE_TILE).min(k);
                for i in i0..i_end {
                    for j in j0..j_end {
                        scratch[j * r + i] = b[i * k + j];
                    }
                }
            }
        }
        matmul_into(out, a, &scratch, m, k, r);
    });
}

/// `out[k×n] = a[m×k]ᵀ · b[m×n]`.
///
/// The shared `m` dimension is the *batch* at the weight-gradient call
/// sites (`dW = xᵀ·grad`), so a direct rank-`m` accumulation rewrites the
/// whole `k×n` output `m/4` times — punishing at small batches. Instead
/// `aᵀ` is materialized once into the thread-local tile-transposed scratch
/// (`O(m·k)`, batch-independent per element of `out`) and the
/// register-blocked [`matmul_into`] runs with the output written exactly
/// once.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths do not match the shapes.
pub fn transposed_matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k, "lhs size mismatch");
    debug_assert_eq!(b.len(), m * n, "rhs size mismatch");
    debug_assert_eq!(out.len(), k * n, "out size mismatch");
    if m == 0 || k == 0 || n == 0 {
        out.fill(0.0);
        return;
    }
    TRANSPOSE_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(k * m, 0.0);
        // Blocked transpose: a (m×k) -> scratch (k×m).
        for i0 in (0..m).step_by(TRANSPOSE_TILE) {
            let i_end = (i0 + TRANSPOSE_TILE).min(m);
            for j0 in (0..k).step_by(TRANSPOSE_TILE) {
                let j_end = (j0 + TRANSPOSE_TILE).min(k);
                for i in i0..i_end {
                    for j in j0..j_end {
                        scratch[j * m + i] = a[i * k + j];
                    }
                }
            }
        }
        matmul_into(out, &scratch, b, k, m, n);
    });
}

/// Dot product with four parallel accumulators.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..n {
        tail += a[i] * b[i];
    }
    (s0 + s1) + (s2 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Straightforward triple loop, used as the oracle.
    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn fill(len: usize, salt: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values.
        (0..len)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt);
                ((x % 2000) as f32 - 1000.0) / 250.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-3 * (1.0 + y.abs()),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_reference_over_shape_grid() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (5, 7, 3), // row tail + reduction tail
            (8, 8, 8),
            (6, 9, 2),      // 4-block plus 2-row tail
            (3, 300, 5),    // long reduction
            (4, 17, 130),   // crosses the NC block boundary
            (32, 203, 128), // paper layer 1 shape
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut out = vec![f32::NAN; m * n];
            matmul_into(&mut out, &a, &b, m, k, n);
            assert_close(&out, &reference(&a, &b, m, k, n));
        }
    }

    #[test]
    fn empty_dimensions_yield_zeros() {
        let mut out: Vec<f32> = vec![];
        matmul_into(&mut out, &[], &[], 0, 5, 0);
        assert!(out.is_empty());
        let mut out = vec![1.0f32; 6];
        // k == 0: product of (2x0)·(0x3) is the 2x3 zero matrix.
        matmul_into(&mut out, &[], &[], 2, 0, 3);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transposed_variants_match_reference() {
        for &(m, k, r) in &[(1, 1, 1), (3, 5, 4), (6, 130, 9), (2, 7, 6), (32, 89, 62)] {
            let a = fill(m * k, 3);
            let b = fill(r * k, 4);
            // a · bᵀ  ==  reference(a, transpose(b)).
            let mut bt = vec![0.0f32; k * r];
            for i in 0..r {
                for j in 0..k {
                    bt[j * r + i] = b[i * k + j];
                }
            }
            let mut out = vec![f32::NAN; m * r];
            matmul_transposed_into(&mut out, &a, &b, m, k, r);
            assert_close(&out, &reference(&a, &bt, m, k, r));
        }
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 4), (130, 6, 9), (7, 6, 2), (32, 62, 60)] {
            let a = fill(m * k, 5);
            let b = fill(m * n, 6);
            // aᵀ · b  ==  reference(transpose(a), b).
            let mut at = vec![0.0f32; k * m];
            for i in 0..m {
                for j in 0..k {
                    at[j * m + i] = a[i * k + j];
                }
            }
            let mut out = vec![f32::NAN; k * n];
            transposed_matmul_into(&mut out, &a, &b, m, k, n);
            assert_close(&out, &reference(&at, &b, k, m, n));
        }
    }

    /// The packed-`b` path must be a pure addressing change: for every
    /// shape above (and straddling) its thresholds, its output is bitwise
    /// identical to the direct kernel's — not merely close.
    #[test]
    fn packed_path_is_bitwise_identical() {
        for &(m, k, n) in &[
            (16, 32, 128),  // exactly at both thresholds
            (16, 33, 130),  // crosses the NC boundary with a k tail
            (17, 64, 64),   // row tail inside the packed path
            (32, 203, 128), // paper layer 1
            (32, 128, 89),  // paper layer 2
            (64, 89, 62),   // paper layer 3, taller batch
            (19, 100, 257), // three column blocks, both tails
        ] {
            assert!(
                m >= PACK_MIN_ROWS && k * n >= PACK_MIN_B,
                "shape below thresholds"
            );
            let a = fill(m * k, 9);
            let b = fill(k * n, 10);
            let mut packed = vec![f32::NAN; m * n];
            matmul_into(&mut packed, &a, &b, m, k, n);
            let mut direct = vec![0.0f32; m * n];
            matmul_into_direct(&mut direct, &a, &b, m, k, n);
            assert!(
                packed == direct,
                "packed and direct kernels diverged bitwise at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn dot_matches_naive() {
        for len in [0, 1, 3, 4, 7, 64, 203] {
            let a = fill(len, 7);
            let b = fill(len, 8);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-3 * (1.0 + naive.abs()));
        }
    }
}
