//! Named parameter snapshots — the currency of federated aggregation.
//!
//! A federated round moves model weights around as [`NamedParams`]: an
//! ordered list of `(name, tensor)` pairs. The names make selective
//! aggregation (FEDHIL), per-tensor saliency (SAFELOC) and debugging
//! tractable; the fixed order keeps optimizers and aggregators aligned.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when loading a parameter snapshot into a model whose
/// architecture does not match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// Snapshot has a different number of tensors than the model.
    CountMismatch {
        /// Tensors expected by the model.
        expected: usize,
        /// Tensors found in the snapshot.
        found: usize,
    },
    /// A tensor's name differs from the model's tensor at that position.
    NameMismatch {
        /// Position in the ordered list.
        index: usize,
        /// Name expected by the model.
        expected: String,
        /// Name found in the snapshot.
        found: String,
    },
    /// A tensor's shape differs from the model's tensor of the same name.
    ShapeMismatch {
        /// Tensor name.
        name: String,
        /// Shape expected by the model.
        expected: (usize, usize),
        /// Shape found in the snapshot.
        found: (usize, usize),
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::CountMismatch { expected, found } => {
                write!(f, "expected {expected} tensors, found {found}")
            }
            ParamError::NameMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "tensor {index}: expected name {expected:?}, found {found:?}"
            ),
            ParamError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "tensor {name:?}: expected shape {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// An ordered, named snapshot of a model's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedParams {
    tensors: Vec<(String, Matrix)>,
}

impl NamedParams {
    /// Creates a snapshot from `(name, tensor)` pairs.
    pub fn new(tensors: Vec<(String, Matrix)>) -> Self {
        Self { tensors }
    }

    /// Number of tensors (not scalar parameters).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` if the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.tensors.iter().map(|(_, t)| t.len()).sum()
    }

    /// Iterator over `(name, tensor)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.tensors.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Mutable iterator over `(name, tensor)` pairs in order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Matrix)> {
        self.tensors.iter_mut().map(|(n, t)| (n.as_str(), t))
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Tensor names in order.
    pub fn names(&self) -> Vec<&str> {
        self.tensors.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// `true` if `other` has the same names and shapes in the same order.
    pub fn same_arch(&self, other: &NamedParams) -> bool {
        self.tensors.len() == other.tensors.len()
            && self
                .tensors
                .iter()
                .zip(&other.tensors)
                .all(|((an, at), (bn, bt))| an == bn && at.shape() == bt.shape())
    }

    /// Checks `other` against `self`, reporting the first mismatch.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParamError`] found, if any.
    pub fn check_arch(&self, other: &NamedParams) -> Result<(), ParamError> {
        if self.tensors.len() != other.tensors.len() {
            return Err(ParamError::CountMismatch {
                expected: self.tensors.len(),
                found: other.tensors.len(),
            });
        }
        for (i, ((an, at), (bn, bt))) in self.tensors.iter().zip(&other.tensors).enumerate() {
            if an != bn {
                return Err(ParamError::NameMismatch {
                    index: i,
                    expected: an.clone(),
                    found: bn.clone(),
                });
            }
            if at.shape() != bt.shape() {
                return Err(ParamError::ShapeMismatch {
                    name: an.clone(),
                    expected: at.shape(),
                    found: bt.shape(),
                });
            }
        }
        Ok(())
    }

    /// Elementwise difference `self - other`, tensor by tensor.
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn delta(&self, other: &NamedParams) -> NamedParams {
        assert!(self.same_arch(other), "delta: architecture mismatch");
        NamedParams {
            tensors: self
                .tensors
                .iter()
                .zip(&other.tensors)
                .map(|((n, a), (_, b))| (n.clone(), a.sub(b)))
                .collect(),
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn axpy(&mut self, alpha: f32, other: &NamedParams) {
        assert!(self.same_arch(other), "axpy: architecture mismatch");
        for ((_, a), (_, b)) in self.tensors.iter_mut().zip(&other.tensors) {
            a.axpy(alpha, b);
        }
    }

    /// Returns `self` scaled elementwise by `alpha`.
    pub fn scale(&self, alpha: f32) -> NamedParams {
        NamedParams {
            tensors: self
                .tensors
                .iter()
                .map(|(n, t)| (n.clone(), t.scale(alpha)))
                .collect(),
        }
    }

    /// L2 norm over all tensors viewed as one flat vector.
    pub fn l2_norm(&self) -> f32 {
        self.tensors
            .iter()
            .map(|(_, t)| {
                let n = t.l2_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// L2 distance to `other` over the flattened parameters.
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn l2_distance(&self, other: &NamedParams) -> f32 {
        assert!(self.same_arch(other), "l2_distance: architecture mismatch");
        self.tensors
            .iter()
            .zip(&other.tensors)
            .map(|((_, a), (_, b))| {
                let d = a.l2_distance(b);
                d * d
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Cosine similarity of the flattened parameter vectors.
    ///
    /// Returns 0 when either vector has zero norm.
    ///
    /// # Panics
    ///
    /// Panics if architectures differ.
    pub fn cosine_similarity(&self, other: &NamedParams) -> f32 {
        assert!(self.same_arch(other), "cosine: architecture mismatch");
        let dot: f32 = self
            .tensors
            .iter()
            .zip(&other.tensors)
            .map(|((_, a), (_, b))| a.flat_dot(b))
            .sum();
        let na = self.l2_norm();
        let nb = other.l2_norm();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Averages a non-empty set of architecture-identical snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or architectures differ.
    pub fn mean(items: &[NamedParams]) -> NamedParams {
        assert!(!items.is_empty(), "mean of zero snapshots");
        let mut acc = items[0].clone();
        for item in &items[1..] {
            assert!(acc.same_arch(item), "mean: architecture mismatch");
            for ((_, a), (_, b)) in acc.tensors.iter_mut().zip(&item.tensors) {
                a.add_assign(b);
            }
        }
        let scale = 1.0 / items.len() as f32;
        for (_, t) in &mut acc.tensors {
            t.scale_assign(scale);
        }
        acc
    }

    /// Flattens all tensors into one `1 x num_params` row vector
    /// (used by FEDLS-style latent-space detectors).
    pub fn flatten(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.num_params());
        for (_, t) in &self.tensors {
            data.extend_from_slice(t.as_slice());
        }
        let cols = data.len();
        Matrix::from_vec(1, cols, data).expect("flatten length is consistent by construction")
    }

    /// In-place `self += flat`, where `flat` is a flattened-parameter
    /// vector in [`NamedParams::flatten`] order — the inverse direction of
    /// `flatten`, used to re-materialize a model from a flat delta.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`NamedParams::num_params`].
    pub fn add_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "add_flat: flat vector length mismatch"
        );
        let mut offset = 0;
        for (_, t) in &mut self.tensors {
            let slice = t.as_mut_slice();
            let len = slice.len();
            for (dst, src) in slice.iter_mut().zip(&flat[offset..offset + len]) {
                *dst += src;
            }
            offset += len;
        }
    }

    /// `true` if any tensor contains NaN or infinity.
    pub fn has_non_finite(&self) -> bool {
        self.tensors.iter().any(|(_, t)| t.has_non_finite())
    }
}

impl FromIterator<(String, Matrix)> for NamedParams {
    fn from_iter<I: IntoIterator<Item = (String, Matrix)>>(iter: I) -> Self {
        Self {
            tensors: iter.into_iter().collect(),
        }
    }
}

/// A model whose parameters can be snapshotted and replaced — the interface
/// federated learning aggregates over.
pub trait HasParams {
    /// Stable, ordered tensor names (e.g. `layer0.w`, `layer0.b`, …).
    fn param_names(&self) -> Vec<String>;

    /// Ordered immutable references to the parameter tensors.
    fn param_tensors(&self) -> Vec<&Matrix>;

    /// Ordered mutable references to the parameter tensors.
    fn param_tensors_mut(&mut self) -> Vec<&mut Matrix>;

    /// Visits every parameter tensor mutably in [`HasParams::param_names`]
    /// order without materializing the reference `Vec` — the
    /// allocation-free path optimizers stream updates through.
    ///
    /// The default delegates to [`HasParams::param_tensors_mut`] (and thus
    /// allocates); hot-path models override it with a direct loop.
    fn visit_param_tensors_mut(&mut self, f: &mut dyn FnMut(&mut Matrix)) {
        for t in self.param_tensors_mut() {
            f(t);
        }
    }

    /// Total scalar parameter count.
    fn num_params(&self) -> usize {
        self.param_tensors().iter().map(|t| t.len()).sum()
    }

    /// Clones the current parameters into a [`NamedParams`] snapshot.
    fn snapshot(&self) -> NamedParams {
        self.param_names()
            .into_iter()
            .zip(self.param_tensors().into_iter().cloned())
            .collect()
    }

    /// Replaces the model's parameters with `params`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if `params` does not match the model's
    /// architecture; the model is left unchanged on error.
    fn load(&mut self, params: &NamedParams) -> Result<(), ParamError> {
        let current = self.snapshot();
        current.check_arch(params)?;
        for (dst, (_, src)) in self
            .param_tensors_mut()
            .into_iter()
            .zip(params.iter().map(|(n, t)| (n, t.clone())))
        {
            *dst = src;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(vals: &[(&str, Vec<f32>)]) -> NamedParams {
        vals.iter()
            .map(|(n, v)| {
                (
                    n.to_string(),
                    Matrix::from_vec(1, v.len(), v.clone()).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn num_params_counts_scalars() {
        let p = snap(&[("a", vec![1.0, 2.0]), ("b", vec![3.0])]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_params(), 3);
    }

    #[test]
    fn delta_and_axpy_round_trip() {
        let a = snap(&[("w", vec![3.0, 4.0])]);
        let b = snap(&[("w", vec![1.0, 1.0])]);
        let d = a.delta(&b);
        assert_eq!(d.get("w").unwrap().as_slice(), &[2.0, 3.0]);
        let mut c = b.clone();
        c.axpy(1.0, &d);
        assert_eq!(c, a);
    }

    #[test]
    fn mean_averages() {
        let a = snap(&[("w", vec![0.0, 2.0])]);
        let b = snap(&[("w", vec![4.0, 0.0])]);
        let m = NamedParams::mean(&[a, b]);
        assert_eq!(m.get("w").unwrap().as_slice(), &[2.0, 1.0]);
    }

    #[test]
    fn mean_of_single_is_identity() {
        let a = snap(&[("w", vec![1.5, -2.5])]);
        assert_eq!(NamedParams::mean(std::slice::from_ref(&a)), a);
    }

    #[test]
    fn l2_distance_matches_flat_view() {
        let a = snap(&[("w", vec![1.0, 0.0]), ("b", vec![0.0])]);
        let b = snap(&[("w", vec![0.0, 0.0]), ("b", vec![2.0])]);
        assert!((a.l2_distance(&b) - 5.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = snap(&[("w", vec![1.0, 0.0])]);
        let b = snap(&[("w", vec![0.0, 1.0])]);
        let c = snap(&[("w", vec![2.0, 0.0])]);
        let z = snap(&[("w", vec![0.0, 0.0])]);
        assert!((a.cosine_similarity(&b)).abs() < 1e-6);
        assert!((a.cosine_similarity(&c) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine_similarity(&z), 0.0);
    }

    #[test]
    fn check_arch_reports_mismatches() {
        let a = snap(&[("w", vec![1.0])]);
        let wrong_count = snap(&[("w", vec![1.0]), ("b", vec![1.0])]);
        let wrong_name = snap(&[("x", vec![1.0])]);
        let wrong_shape = snap(&[("w", vec![1.0, 2.0])]);
        assert!(matches!(
            a.check_arch(&wrong_count),
            Err(ParamError::CountMismatch {
                expected: 1,
                found: 2
            })
        ));
        assert!(matches!(
            a.check_arch(&wrong_name),
            Err(ParamError::NameMismatch { index: 0, .. })
        ));
        assert!(matches!(
            a.check_arch(&wrong_shape),
            Err(ParamError::ShapeMismatch { .. })
        ));
        assert!(a.check_arch(&a.clone()).is_ok());
    }

    #[test]
    fn flatten_concatenates_in_order() {
        let p = snap(&[("a", vec![1.0, 2.0]), ("b", vec![3.0])]);
        assert_eq!(p.flatten().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_flat_inverts_flatten_order() {
        let mut p = snap(&[("a", vec![1.0, 2.0]), ("b", vec![3.0])]);
        p.add_flat(&[0.5, -1.0, 2.0]);
        assert_eq!(p.get("a").unwrap().as_slice(), &[1.5, 1.0]);
        assert_eq!(p.get("b").unwrap().as_slice(), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "add_flat")]
    fn add_flat_rejects_length_mismatch() {
        let mut p = snap(&[("a", vec![1.0, 2.0])]);
        p.add_flat(&[1.0]);
    }

    #[test]
    fn non_finite_propagates() {
        let mut p = snap(&[("a", vec![1.0])]);
        assert!(!p.has_non_finite());
        p.iter_mut().next().unwrap().1.set(0, 0, f32::INFINITY);
        assert!(p.has_non_finite());
    }
}
