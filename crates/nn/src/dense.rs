//! Fully-connected layer with explicit forward and backward passes.

use crate::init::Init;
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected (dense) layer: `y = x W + b`.
///
/// Weights are stored `(in_dim, out_dim)` so a `(batch, in_dim)` input maps
/// to a `(batch, out_dim)` output with a single matmul.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
}

/// Gradients produced by [`Dense::backward`].
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// `dL/dW`, shaped like the weight matrix.
    pub w: Matrix,
    /// `dL/db`, shaped like the bias row vector.
    pub b: Matrix,
    /// `dL/dx`, shaped like the layer input — this is what flows to the
    /// previous layer, and ultimately what the gradient-based poisoning
    /// attacks read off at the input.
    pub x: Matrix,
}

impl Dense {
    /// Creates a layer with `init`-initialized weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut impl Rng) -> Self {
        Self {
            w: init.matrix(in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
        }
    }

    /// Builds a layer directly from a weight matrix and bias row.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 x w.cols()`.
    pub fn from_parts(w: Matrix, b: Matrix) -> Self {
        assert_eq!(b.shape(), (1, w.cols()), "bias must be 1x{}", w.cols());
        Self { w, b }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable parameters (`in*out + out`).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutable access to the weight matrix.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// The bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Mutable access to the bias row vector.
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.b
    }

    /// Simultaneous mutable access to weights and bias (split borrow), used
    /// when collecting all parameter tensors of a model.
    pub fn parts_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.w, &mut self.b)
    }

    /// Forward pass: `x W + b` for a `(batch, in_dim)` input.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass into a caller-owned buffer (allocation-free once warm).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        out.add_row_broadcast_assign(&self.b);
    }

    /// Backward pass.
    ///
    /// `x` is the input that produced the forward output and `grad_out` is
    /// `dL/dy` with shape `(batch, out_dim)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `x`, `grad_out` and the layer.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> DenseGrads {
        let mut w = Matrix::zeros(0, 0);
        let mut b = Matrix::zeros(0, 0);
        let mut gx = Matrix::zeros(0, 0);
        self.backward_into(x, grad_out, &mut w, &mut b, &mut gx);
        DenseGrads { w, b, x: gx }
    }

    /// Backward pass into caller-owned gradient buffers (allocation-free
    /// once warm): `dw = xᵀ·grad_out`, `db = Σ_rows grad_out`,
    /// `dx = grad_out·Wᵀ`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `x`, `grad_out` and the layer.
    pub fn backward_into(
        &self,
        x: &Matrix,
        grad_out: &Matrix,
        dw: &mut Matrix,
        db: &mut Matrix,
        dx: &mut Matrix,
    ) {
        self.param_grads_into(x, grad_out, dw, db);
        grad_out.matmul_transposed_into(&self.w, dx);
    }

    /// The parameter-gradient half of [`Dense::backward_into`], without the
    /// input gradient — what a training step needs from the first layer,
    /// where `dx` would multiply against the widest weight matrix only to
    /// be discarded.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `x`, `grad_out` and the layer.
    pub fn param_grads_into(
        &self,
        x: &Matrix,
        grad_out: &Matrix,
        dw: &mut Matrix,
        db: &mut Matrix,
    ) {
        assert_eq!(x.cols(), self.in_dim(), "input width mismatch");
        assert_eq!(grad_out.cols(), self.out_dim(), "grad width mismatch");
        assert_eq!(x.rows(), grad_out.rows(), "batch mismatch");
        x.transposed_matmul_into(grad_out, dw);
        grad_out.sum_rows_into(db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::row_vector(&[0.1, 0.2, 0.3]);
        Dense::from_parts(w, b)
    }

    #[test]
    fn forward_matches_hand_computation() {
        let l = layer();
        let x = Matrix::row_vector(&[1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (1, 3));
        let expect = [5.1, 7.2, 9.3];
        for (a, e) in y.as_slice().iter().zip(expect) {
            assert!((a - e).abs() < 1e-5);
        }
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        assert_eq!(layer().num_params(), 2 * 3 + 3);
    }

    #[test]
    fn backward_shapes() {
        let l = layer();
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let g = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        let grads = l.backward(&x, &g);
        assert_eq!(grads.w.shape(), (2, 3));
        assert_eq!(grads.b.shape(), (1, 3));
        assert_eq!(grads.x.shape(), (2, 2));
    }

    /// Finite-difference check of all three gradients on a random layer.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let l = Dense::new(4, 3, Init::HeUniform, &mut rng);
        let x = Init::Uniform(1.0).matrix(2, 4, &mut rng);
        // Scalar loss L = sum(forward(x)).
        let loss = |l: &Dense, x: &Matrix| l.forward(x).sum();
        let grad_out = Matrix::filled(2, 3, 1.0); // dL/dy for L = sum(y)
        let grads = l.backward(&x, &grad_out);
        let h = 1e-3;

        // dL/dW
        for r in 0..4 {
            for c in 0..3 {
                let mut lp = l.clone();
                let mut lm = l.clone();
                lp.weights_mut().set(r, c, l.weights().get(r, c) + h);
                lm.weights_mut().set(r, c, l.weights().get(r, c) - h);
                let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                assert!(
                    (num - grads.w.get(r, c)).abs() < 1e-2,
                    "dW({r},{c}): numeric {num} vs analytic {}",
                    grads.w.get(r, c)
                );
            }
        }
        // dL/db
        for c in 0..3 {
            let mut lp = l.clone();
            let mut lm = l.clone();
            lp.bias_mut().set(0, c, l.bias().get(0, c) + h);
            lm.bias_mut().set(0, c, l.bias().get(0, c) - h);
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!((num - grads.b.get(0, c)).abs() < 1e-2);
        }
        // dL/dx
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                xm.set(r, c, x.get(r, c) - h);
                let num = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
                assert!((num - grads.x.get(r, c)).abs() < 1e-2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bias must be 1x3")]
    fn from_parts_validates_bias() {
        let w = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 2);
        let _ = Dense::from_parts(w, b);
    }
}
