//! File snapshots of parameters and networks — the persistence primitive
//! behind the serving-side model registry.
//!
//! Two envelope formats, both JSON with a schema tag so a wrong or stale
//! file fails loudly instead of deserializing into garbage:
//!
//! * **Parameter snapshots** ([`save_params`] / [`load_params`]) carry a
//!   bare [`NamedParams`] — the currency of federated aggregation.
//!   [`load_params_into`] additionally loads into an existing model and
//!   surfaces any architecture mismatch through the existing
//!   [`ParamError`] type (wrapped in [`SnapshotError::Arch`]).
//! * **Network snapshots** ([`save_network`] / [`load_network`]) carry a
//!   full [`Sequential`] (layers + activations), so a process that never
//!   saw the training code can reconstruct a servable model.
//!
//! Weights are finite by invariant (the FL layer drops non-finite updates
//! before they reach a global model); a snapshot containing NaN/Inf would
//! serialize to JSON `null` and fail to load, which is the desired outcome.

use crate::params::{HasParams, NamedParams, ParamError};
use crate::sequential::Sequential;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Schema tag of parameter-snapshot files.
pub const PARAMS_SCHEMA: &str = "safeloc-nn/params/v1";

/// Schema tag of full-network snapshot files.
pub const NETWORK_SCHEMA: &str = "safeloc-nn/network/v1";

/// Error loading or saving a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(String),
    /// The file is not valid JSON, carries the wrong schema tag, or does
    /// not deserialize into the expected shape.
    Parse(String),
    /// The snapshot parsed but does not match the target model's
    /// architecture (count / name / shape mismatch).
    Arch(ParamError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            SnapshotError::Parse(msg) => write!(f, "snapshot parse error: {msg}"),
            SnapshotError::Arch(e) => write!(f, "snapshot architecture mismatch: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<ParamError> for SnapshotError {
    fn from(e: ParamError) -> Self {
        SnapshotError::Arch(e)
    }
}

#[derive(Serialize, Deserialize)]
struct ParamsFile {
    schema: String,
    params: NamedParams,
}

#[derive(Serialize, Deserialize)]
struct NetworkFile {
    schema: String,
    network: Sequential,
}

/// Verifies a file's schema tag — shared by every schema-tagged snapshot
/// format (including the serving-side registry files).
///
/// # Errors
///
/// Returns [`SnapshotError::Parse`] naming both tags on mismatch.
pub fn check_schema(found: &str, expected: &str) -> Result<(), SnapshotError> {
    if found == expected {
        Ok(())
    } else {
        Err(SnapshotError::Parse(format!(
            "wrong schema: expected {expected:?}, found {found:?}"
        )))
    }
}

/// Serializes `value` as JSON to `path` — the write half of every
/// schema-tagged snapshot format (callers embed their schema tag in
/// `value`).
///
/// # Errors
///
/// [`SnapshotError::Io`] if the file cannot be written.
pub fn write_json_file<T: serde::Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), SnapshotError> {
    let json = serde_json::to_string(value).map_err(|e| SnapshotError::Parse(format!("{e:?}")))?;
    std::fs::write(path.as_ref(), json).map_err(|e| SnapshotError::Io(e.to_string()))
}

/// Reads and deserializes a JSON file — the read half of every
/// schema-tagged snapshot format (callers [`check_schema`] afterwards).
///
/// # Errors
///
/// [`SnapshotError::Io`] if the file cannot be read, [`SnapshotError::Parse`]
/// on malformed JSON or a shape mismatch.
pub fn read_json_file<T: serde::Deserialize>(path: impl AsRef<Path>) -> Result<T, SnapshotError> {
    let json =
        std::fs::read_to_string(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
    serde_json::from_str(&json).map_err(|e| SnapshotError::Parse(format!("{e:?}")))
}

/// Writes a parameter snapshot to `path`.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if the file cannot be written.
pub fn save_params(path: impl AsRef<Path>, params: &NamedParams) -> Result<(), SnapshotError> {
    write_json_file(
        path,
        &ParamsFile {
            schema: PARAMS_SCHEMA.to_string(),
            params: params.clone(),
        },
    )
}

/// Reads a parameter snapshot from `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the file cannot be read, [`SnapshotError::Parse`]
/// on malformed JSON or a wrong schema tag.
pub fn load_params(path: impl AsRef<Path>) -> Result<NamedParams, SnapshotError> {
    let file: ParamsFile = read_json_file(path)?;
    check_schema(&file.schema, PARAMS_SCHEMA)?;
    Ok(file.params)
}

/// Loads a parameter snapshot from `path` into `model`.
///
/// The model is left unchanged on any error.
///
/// # Errors
///
/// Everything [`load_params`] reports, plus [`SnapshotError::Arch`] when
/// the snapshot does not match the model's architecture.
pub fn load_params_into<M: HasParams>(
    model: &mut M,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    let params = load_params(path)?;
    model.load(&params)?;
    Ok(())
}

/// Writes a full-network snapshot to `path`.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if the file cannot be written.
pub fn save_network(path: impl AsRef<Path>, network: &Sequential) -> Result<(), SnapshotError> {
    write_json_file(
        path,
        &NetworkFile {
            schema: NETWORK_SCHEMA.to_string(),
            network: network.clone(),
        },
    )
}

/// Reads a full-network snapshot from `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the file cannot be read, [`SnapshotError::Parse`]
/// on malformed JSON or a wrong schema tag.
pub fn load_network(path: impl AsRef<Path>) -> Result<Sequential, SnapshotError> {
    let file: NetworkFile = read_json_file(path)?;
    check_schema(&file.schema, NETWORK_SCHEMA)?;
    Ok(file.network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::tensor::Matrix;
    use std::path::PathBuf;

    /// A unique temp path per test (process id + name keeps parallel test
    /// binaries from colliding).
    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "safeloc_snapshot_{}_{name}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn params_round_trip_bitwise() {
        let net = Sequential::mlp(&[5, 4, 3], Activation::Relu, 9);
        let snap = net.snapshot();
        let path = tmp("params_rt");
        save_params(&path, &snap).unwrap();
        let back = load_params(&path).unwrap();
        assert_eq!(back, snap, "file round trip must be bitwise");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn network_round_trip_preserves_predictions() {
        let net = Sequential::mlp(&[6, 5, 4], Activation::Relu, 3);
        let path = tmp("network_rt");
        save_network(&path, &net).unwrap();
        let back = load_network(&path).unwrap();
        let x = Matrix::from_rows(&[vec![0.1, -0.4, 0.9, 0.0, 0.3, -0.7]]);
        assert_eq!(net.forward(&x), back.forward(&x));
        assert_eq!(net, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_into_surfaces_arch_mismatch_and_leaves_model_unchanged() {
        let donor = Sequential::mlp(&[5, 4, 3], Activation::Relu, 1);
        let path = tmp("params_mismatch");
        save_params(&path, &donor.snapshot()).unwrap();
        let mut wrong = Sequential::mlp(&[5, 6, 3], Activation::Relu, 2);
        let before = wrong.snapshot();
        let err = load_params_into(&mut wrong, &path).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Arch(ParamError::ShapeMismatch { .. })),
            "{err}"
        );
        assert_eq!(wrong.snapshot(), before, "model must be untouched on error");
        // A matching model loads fine.
        let mut right = Sequential::mlp(&[5, 4, 3], Activation::Relu, 7);
        load_params_into(&mut right, &path).unwrap();
        assert_eq!(right.snapshot(), donor.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_and_missing_files_fail_loudly() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{ not json at all").unwrap();
        assert!(matches!(load_params(&path), Err(SnapshotError::Parse(_))));
        assert!(matches!(load_network(&path), Err(SnapshotError::Parse(_))));
        // Truncated but valid-prefix JSON.
        std::fs::write(&path, "{\"schema\": \"safeloc-nn/params/v1\"").unwrap();
        assert!(matches!(load_params(&path), Err(SnapshotError::Parse(_))));
        std::fs::remove_file(&path).ok();
        assert!(matches!(load_params(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn wrong_schema_is_rejected_both_ways() {
        let net = Sequential::mlp(&[3, 2], Activation::Relu, 0);
        let path = tmp("schema_mix");
        // A network file is not a params file and vice versa.
        save_network(&path, &net).unwrap();
        assert!(matches!(load_params(&path), Err(SnapshotError::Parse(_))));
        save_params(&path, &net.snapshot()).unwrap();
        assert!(matches!(load_network(&path), Err(SnapshotError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }
}
