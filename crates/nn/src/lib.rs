//! Minimal dense neural-network substrate for the SAFELOC reproduction.
//!
//! This crate is the hand-rolled ML stack the paper's models are built on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the linear-algebra ops needed
//!   for dense networks (matmul, transpose, elementwise algebra, reductions),
//!   including `*_into` variants that write into caller-owned buffers.
//! * [`kernels`] — the register-blocked matmul kernels every product routes
//!   through (see the module docs for the design rationale and measured
//!   speedups over the seed scalar loops).
//! * [`Dense`] — a fully-connected layer with explicit forward/backward.
//! * [`Activation`] — ReLU / LeakyReLU / Sigmoid / Tanh / Identity, with
//!   in-place `forward_assign` / `backward_assign` hot-path variants.
//! * [`MseLoss`] / [`SparseCrossEntropyLoss`] — the two losses the paper
//!   trains with (autoencoder reconstruction and RP classification); the
//!   softmax/NLL pass is fused in `loss_and_grad_into`.
//! * [`Sgd`] / [`Adam`] — optimizers over named parameter lists, streaming
//!   updates through [`optim::ParamStream`] without per-step allocation.
//! * [`Sequential`] — an MLP assembled from the above, with mini-batch
//!   training, prediction and **input gradients** (required by the
//!   gradient-based poisoning attacks in `safeloc-attacks`).
//! * [`Workspace`] — reusable forward/backward scratch; a warm
//!   `train_batch_with` step performs zero heap allocations
//!   (`tests/alloc_free.rs`).
//! * [`NamedParams`] / [`HasParams`] — the named-tensor views that the
//!   federated-learning layer (`safeloc-fl`) aggregates over.
//! * [`snapshot`] — schema-tagged parameter/network file snapshots (the
//!   serving registry's persistence primitive); architecture mismatches
//!   surface through [`ParamError`].
//!
//! Everything is deterministic given a seed; there is no global RNG, and
//! the only threading is the row-chunked parallel [`Sequential::predict`],
//! which is bitwise order-independent.
//!
//! # Example
//!
//! Train a tiny classifier on a toy two-cluster problem:
//!
//! ```
//! use safeloc_nn::{Activation, Adam, Matrix, Sequential, TrainConfig};
//!
//! // Two 2-D clusters around (0,0) and (1,1).
//! let x = Matrix::from_rows(&[
//!     vec![0.0, 0.1], vec![0.1, 0.0], vec![0.9, 1.0], vec![1.0, 0.9],
//! ]);
//! let labels = vec![0, 0, 1, 1];
//!
//! let mut model = Sequential::mlp(&[2, 8, 2], Activation::Relu, 7);
//! let mut opt = Adam::new(0.05);
//! let losses = model.fit_classifier(&x, &labels, &mut opt, &TrainConfig::new(200, 4, 7));
//! assert!(losses.last().unwrap() < &0.1);
//! assert_eq!(model.predict(&x), labels);
//! ```

pub mod activation;
pub mod data;
pub mod dense;
pub mod init;
pub mod kernels;
pub mod loss;
pub mod optim;
pub mod params;
pub mod sequential;
pub mod snapshot;
pub mod tensor;

pub use activation::Activation;
pub use data::{
    gather_labels, gather_labels_into, gather_rows, gather_rows_into, shuffled_batches,
};
pub use dense::{Dense, DenseGrads};
pub use init::Init;
pub use loss::{MseLoss, SparseCrossEntropyLoss};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{HasParams, NamedParams, ParamError};
pub use sequential::{Sequential, TrainConfig, Workspace};
pub use snapshot::{
    load_network, load_params, load_params_into, save_network, save_params, SnapshotError,
};
pub use tensor::{Matrix, ShapeError};
