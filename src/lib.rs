//! Workspace facade for the SAFELOC reproduction.
//!
//! The implementation lives in the `crates/` workspace members; this crate
//! re-exports them under one roof so the top-level `tests/` and `examples/`
//! have a single dependency, and so `cargo doc` renders the whole system
//! from one entry point.
//!
//! | Crate | Role |
//! |---|---|
//! | [`nn`] | dense NN substrate (blocked matmul kernels, layers, losses, optimizers) |
//! | [`dataset`] | synthetic multi-building, multi-device RSS fingerprints |
//! | [`attacks`] | the five poisoning attacks of §III.A |
//! | [`fl`] | federated engine: clients, servers, aggregation rules, sessions + round plans/reports |
//! | [`core`] | SAFELOC itself: fused network + saliency aggregation |
//! | [`baselines`] | FEDLOC / FEDHIL / KRUM / FEDCC / FEDLS / ONLAD |
//! | [`metrics`] | localization-error statistics and report rendering |
//! | [`serve`] | online serving: model registry, micro-batched inference, load harness |
//! | [`wire`] | binary wire protocol: TCP serving front, remote federated rounds |
//! | [`telemetry`] | lock-light metrics, flight-recorder tracing, Prometheus exposition |
//! | [`bench`](mod@bench) | paper-figure harness and performance reporting |

pub use safeloc as core;
pub use safeloc_attacks as attacks;
pub use safeloc_baselines as baselines;
pub use safeloc_bench as bench;
pub use safeloc_dataset as dataset;
pub use safeloc_fl as fl;
pub use safeloc_metrics as metrics;
pub use safeloc_nn as nn;
pub use safeloc_serve as serve;
pub use safeloc_telemetry as telemetry;
pub use safeloc_wire as wire;
